//! The measurement database — the `loupedb` analogue (§3.3: "Sharing
//! Loupe Results").
//!
//! Results are final for a fixed build of the software, its workload and
//! kernel, so they are worth persisting and sharing. This crate stores
//! [`AppReport`]s as JSON files in a directory tree
//! (`<root>/<app>/<workload>.json`), supports conservative merging of
//! repeated measurements, and imports/exports OS support specs in the
//! paper's one-syscall-per-line CSV form.
//!
//! # Examples
//!
//! ```
//! use loupe_db::Database;
//!
//! let dir = std::env::temp_dir().join("loupedb-doc-example");
//! let db = Database::open(&dir).unwrap();
//! assert!(db.list().unwrap().is_empty() || !db.list().unwrap().is_empty());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use loupe_apps::Workload;
use loupe_core::{AppReport, FeatureClass, Impact, LINUX_ENV};
use loupe_gentests::ConformanceSuite;
use loupe_plan::{AppRequirement, MatrixCell, OsSpec, PlanValidation};
use loupe_static::{Level, StaticReport};

/// A directory-backed measurement database.
#[derive(Debug, Clone)]
pub struct Database {
    root: PathBuf,
}

/// Database errors.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem error.
    Io(io::Error),
    /// Malformed stored JSON.
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// Parser message.
        message: String,
    },
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "database I/O error: {e}"),
            DbError::Corrupt { path, message } => {
                write!(f, "corrupt database entry {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> Self {
        DbError::Io(e)
    }
}

/// The inverse of `<workload>.json` entry filenames: the single place
/// that maps a stored file name back to its [`Workload`], shared by
/// every namespace listing (baselines, plan verdicts, matrix cells).
fn workload_from_filename(name: &str) -> Option<Workload> {
    Workload::ALL
        .iter()
        .copied()
        .find(|w| name == format!("{}.json", w.label()))
}

impl Database {
    /// Opens (creating if needed) a database rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl AsRef<Path>) -> Result<Database, DbError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(Database { root })
    }

    /// The database root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, env: &str, app: &str, workload: Workload) -> PathBuf {
        // Full-Linux baselines live at the root (the shape every loupedb
        // has always had); restricted-environment measurements are
        // segregated under `env/<name>/` so they can never be confused
        // with a baseline by the cache key.
        let base = if env == LINUX_ENV {
            self.root.clone()
        } else {
            self.root.join("env").join(env)
        };
        base.join(app).join(format!("{}.json", workload.label()))
    }

    /// Stores a report, conservatively merging with any existing entry for
    /// the same `(env, app, workload)`: a feature is classified stubbable
    /// or fakeable only if *every* stored measurement agrees (§3.1).
    /// Reports measured on a restricted execution environment are stored
    /// under the `env/<name>/` namespace, segregated from the full-Linux
    /// baselines the dynamic pipeline caches.
    ///
    /// # Errors
    ///
    /// I/O and serialisation failures.
    pub fn save(&self, report: &AppReport) -> Result<(), DbError> {
        // Merge only with a stored entry of the *same* environment; a
        // legacy mismatched entry at this path is superseded, not merged
        // (merging a restricted-kernel trace into a baseline would
        // poison it).
        let merged = match self
            .load_env(&report.env, &report.app, report.workload)?
            .filter(|existing| existing.env == report.env)
        {
            Some(existing) => merge_reports(&existing, report),
            None => report.clone(),
        };
        let path = self.entry_path(&report.env, &report.app, report.workload);
        fs::create_dir_all(path.parent().expect("entry path has parent"))?;
        let json = serde_json::to_string_pretty(&merged).map_err(|e| DbError::Corrupt {
            path: path.clone(),
            message: e.to_string(),
        })?;
        fs::write(&path, json)?;
        Ok(())
    }

    /// Loads the stored *full-Linux baseline* for `(app, workload)`, if
    /// any. An entry at the baseline path that records a different
    /// execution environment (written by tooling predating the
    /// segregation) is rejected — `Ok(None)` — so it is re-measured
    /// rather than served as a baseline.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load(&self, app: &str, workload: Workload) -> Result<Option<AppReport>, DbError> {
        Ok(self
            .load_env(LINUX_ENV, app, workload)?
            .filter(AppReport::is_linux_baseline))
    }

    /// Loads the stored report for `(env, app, workload)`, if any.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_env(
        &self,
        env: &str,
        app: &str,
        workload: Workload,
    ) -> Result<Option<AppReport>, DbError> {
        let path = self.entry_path(env, app, workload);
        match fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str(&text)
                .map(Some)
                .map_err(|e| DbError::Corrupt {
                    path,
                    message: e.to_string(),
                }),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Whether a full-Linux baseline entry for `(app, workload)` is
    /// stored (cheap: a file probe, no parsing) — for tooling that only
    /// needs existence; the sweep driver itself loads the entry since a
    /// cache hit is returned.
    pub fn contains(&self, app: &str, workload: Workload) -> bool {
        self.entry_path(LINUX_ENV, app, workload).is_file()
    }

    /// Loads every stored report for one workload, sorted by app name —
    /// the bulk path behind fleet-wide aggregation and reporting.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_workload(&self, workload: Workload) -> Result<Vec<AppReport>, DbError> {
        let mut out = Vec::new();
        for (app, w) in self.list()? {
            if w == workload {
                if let Some(report) = self.load(&app, w)? {
                    out.push(report);
                }
            }
        }
        out.sort_by(|a: &AppReport, b: &AppReport| a.app.cmp(&b.app));
        Ok(out)
    }

    /// Lists `(app, workload)` pairs present in the database.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn list(&self) -> Result<Vec<(String, Workload)>, DbError> {
        let mut out = Vec::new();
        for app_dir in fs::read_dir(&self.root)? {
            let app_dir = app_dir?;
            if !app_dir.file_type()?.is_dir() {
                continue;
            }
            let app = app_dir.file_name().to_string_lossy().into_owned();
            // Non-baseline namespaces sharing the root directory.
            if matches!(app.as_str(), "env" | "plans" | "os" | "static" | "gentests") {
                continue;
            }
            for entry in fs::read_dir(app_dir.path())? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                let Some(workload) = workload_from_filename(&name) else {
                    continue;
                };
                out.push((app.clone(), workload));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Loads every stored report for `workload` as planner requirements.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn requirements(&self, workload: Workload) -> Result<Vec<AppRequirement>, DbError> {
        let mut out = Vec::new();
        for (app, w) in self.list()? {
            if w == workload {
                if let Some(report) = self.load(&app, w)? {
                    out.push(AppRequirement::from_report(&report));
                }
            }
        }
        Ok(out)
    }

    /// Stores a plan-validation verdict under
    /// `<root>/plans/<os>/<workload>.json`, overwriting any previous
    /// validation of the same (OS, workload) — unlike measurements,
    /// validations are not merged: they describe one deterministic
    /// replay of the current plan.
    ///
    /// # Errors
    ///
    /// I/O and serialisation failures.
    pub fn save_plan_validation(&self, validation: &PlanValidation) -> Result<(), DbError> {
        let path = self.plan_path(&validation.os, validation.workload);
        fs::create_dir_all(path.parent().expect("plan path has parent"))?;
        let json = serde_json::to_string_pretty(validation).map_err(|e| DbError::Corrupt {
            path: path.clone(),
            message: e.to_string(),
        })?;
        fs::write(&path, json)?;
        Ok(())
    }

    /// Loads the stored validation for `(os, workload)`, if any.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_plan_validation(
        &self,
        os: &str,
        workload: Workload,
    ) -> Result<Option<PlanValidation>, DbError> {
        let path = self.plan_path(os, workload);
        match fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str(&text)
                .map(Some)
                .map_err(|e| DbError::Corrupt {
                    path,
                    message: e.to_string(),
                }),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Lists `(os, workload)` pairs with stored plan validations.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn list_plan_validations(&self) -> Result<Vec<(String, Workload)>, DbError> {
        let root = self.root.join("plans");
        let mut out = Vec::new();
        let entries = match fs::read_dir(&root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        for os_dir in entries {
            let os_dir = os_dir?;
            if !os_dir.file_type()?.is_dir() {
                continue;
            }
            let os = os_dir.file_name().to_string_lossy().into_owned();
            for entry in fs::read_dir(os_dir.path())? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                let Some(workload) = workload_from_filename(&name) else {
                    continue;
                };
                out.push((os.clone(), workload));
            }
        }
        out.sort();
        Ok(out)
    }

    fn plan_path(&self, os: &str, workload: Workload) -> PathBuf {
        self.root
            .join("plans")
            .join(os)
            .join(format!("{}.json", workload.label()))
    }

    /// Stores a generated conformance suite under
    /// `<root>/gentests/<os>/<workload>/<app>.json`, overwriting any
    /// previous suite for the same cell — like plan validations (and
    /// unlike measurements), suites are not merged: each one is a
    /// deterministic compilation of the current corpus.
    ///
    /// # Errors
    ///
    /// I/O and serialisation failures.
    pub fn save_suite(&self, suite: &ConformanceSuite) -> Result<(), DbError> {
        let path = self.suite_path(&suite.os, &suite.app, suite.workload);
        fs::create_dir_all(path.parent().expect("suite path has parent"))?;
        let json = serde_json::to_string_pretty(suite).map_err(|e| DbError::Corrupt {
            path: path.clone(),
            message: e.to_string(),
        })?;
        fs::write(&path, json)?;
        Ok(())
    }

    /// Loads the stored conformance suite for `(os, app, workload)`, if
    /// any.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_suite(
        &self,
        os: &str,
        app: &str,
        workload: Workload,
    ) -> Result<Option<ConformanceSuite>, DbError> {
        let path = self.suite_path(os, app, workload);
        match fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str(&text)
                .map(Some)
                .map_err(|e| DbError::Corrupt {
                    path,
                    message: e.to_string(),
                }),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Lists `(os, app, workload)` triples with stored conformance
    /// suites.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn list_suites(&self) -> Result<Vec<(String, String, Workload)>, DbError> {
        let root = self.root.join("gentests");
        let mut out = Vec::new();
        let entries = match fs::read_dir(&root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        for os_dir in entries {
            let os_dir = os_dir?;
            if !os_dir.file_type()?.is_dir() {
                continue;
            }
            let os = os_dir.file_name().to_string_lossy().into_owned();
            for wl_dir in fs::read_dir(os_dir.path())? {
                let wl_dir = wl_dir?;
                if !wl_dir.file_type()?.is_dir() {
                    continue;
                }
                let label = wl_dir.file_name().to_string_lossy().into_owned();
                let Some(workload) = Workload::ALL.iter().copied().find(|w| w.label() == label)
                else {
                    continue;
                };
                for entry in fs::read_dir(wl_dir.path())? {
                    let entry = entry?;
                    let name = entry.file_name().to_string_lossy().into_owned();
                    let Some(app) = name.strip_suffix(".json") else {
                        continue;
                    };
                    out.push((os.clone(), app.to_owned(), workload));
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Loads every stored conformance suite, sorted by `(os, app,
    /// workload)` — the bulk path behind `docs/CONFORMANCE.md`.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_suites(&self) -> Result<Vec<ConformanceSuite>, DbError> {
        let mut out = Vec::new();
        for (os, app, workload) in self.list_suites()? {
            if let Some(suite) = self.load_suite(&os, &app, workload)? {
                out.push(suite);
            }
        }
        Ok(out)
    }

    fn suite_path(&self, os: &str, app: &str, workload: Workload) -> PathBuf {
        self.root
            .join("gentests")
            .join(os)
            .join(workload.label())
            .join(format!("{app}.json"))
    }

    fn matrix_path(&self, os: &str, app: &str, workload: Workload) -> PathBuf {
        self.root
            .join("env")
            .join(os)
            .join("matrix")
            .join(app)
            .join(format!("{}.json", workload.label()))
    }

    /// Stores one fleet × OS compatibility-matrix cell under the
    /// environment's namespace, `env/<os>/matrix/<app>/<workload>.json`
    /// (the `matrix/` directory is reserved inside each environment; no
    /// application may be called `matrix`). A stored cell for the same
    /// key is *composed with*, not clobbered: tiers the new cell did not
    /// measure (`None`) keep the stored verdict, so a vanilla-only sweep
    /// followed by a planned sweep yields one complete cell.
    ///
    /// # Errors
    ///
    /// I/O and serialisation failures.
    pub fn save_matrix_cell(&self, cell: &MatrixCell) -> Result<(), DbError> {
        let mut merged = cell.clone();
        if let Some(existing) = self.load_matrix_cell(&cell.os, &cell.app, cell.workload)? {
            if merged.vanilla.is_none() {
                merged.vanilla = existing.vanilla;
            }
            if merged.planned.is_none() {
                merged.planned = existing.planned;
            }
        }
        let path = self.matrix_path(&cell.os, &cell.app, cell.workload);
        fs::create_dir_all(path.parent().expect("matrix path has parent"))?;
        let json = serde_json::to_string_pretty(&merged).map_err(|e| DbError::Corrupt {
            path: path.clone(),
            message: e.to_string(),
        })?;
        fs::write(&path, json)?;
        Ok(())
    }

    /// Loads the stored matrix cell for `(os, app, workload)`, if any.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_matrix_cell(
        &self,
        os: &str,
        app: &str,
        workload: Workload,
    ) -> Result<Option<MatrixCell>, DbError> {
        let path = self.matrix_path(os, app, workload);
        match fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str(&text)
                .map(Some)
                .map_err(|e| DbError::Corrupt {
                    path,
                    message: e.to_string(),
                }),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Lists `(os, app, workload)` keys with stored matrix cells.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn list_matrix_cells(&self) -> Result<Vec<(String, String, Workload)>, DbError> {
        let env_root = self.root.join("env");
        let mut out = Vec::new();
        let oses = match fs::read_dir(&env_root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        for os_dir in oses {
            let os_dir = os_dir?;
            if !os_dir.file_type()?.is_dir() {
                continue;
            }
            let os = os_dir.file_name().to_string_lossy().into_owned();
            let matrix_root = os_dir.path().join("matrix");
            let apps = match fs::read_dir(&matrix_root) {
                Ok(entries) => entries,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            };
            for app_dir in apps {
                let app_dir = app_dir?;
                if !app_dir.file_type()?.is_dir() {
                    continue;
                }
                let app = app_dir.file_name().to_string_lossy().into_owned();
                for entry in fs::read_dir(app_dir.path())? {
                    let entry = entry?;
                    let name = entry.file_name().to_string_lossy().into_owned();
                    let Some(workload) = workload_from_filename(&name) else {
                        continue;
                    };
                    out.push((os.clone(), app.clone(), workload));
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Loads every stored matrix cell, sorted by `(os, app, workload)` —
    /// the bulk path behind matrix aggregation and `OS_MATRIX.md`.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_matrix(&self) -> Result<Vec<MatrixCell>, DbError> {
        let mut out = Vec::new();
        for (os, app, workload) in self.list_matrix_cells()? {
            if let Some(cell) = self.load_matrix_cell(&os, &app, workload)? {
                out.push(cell);
            }
        }
        out.sort_by(|a, b| {
            (&a.os, &a.app, a.workload.label()).cmp(&(&b.os, &b.app, b.workload.label()))
        });
        Ok(out)
    }

    fn static_path(&self, level: Level, app: &str) -> PathBuf {
        self.root
            .join("static")
            .join(level.label())
            .join(format!("{app}.json"))
    }

    /// Stores a static-analysis report under
    /// `<root>/static/<level>/<app>.json` — a namespace keyed by
    /// analysis level, fully segregated from the dynamic measurements,
    /// so a `StaticReport` can never collide with (or be served as) a
    /// dynamic baseline. Overwrites any previous entry: static analysis
    /// is a deterministic pure function of the app's code descriptor,
    /// so unlike measurements there is nothing to merge.
    ///
    /// # Errors
    ///
    /// I/O and serialisation failures.
    pub fn save_static(&self, report: &StaticReport) -> Result<(), DbError> {
        let path = self.static_path(report.level, &report.app);
        fs::create_dir_all(path.parent().expect("static path has parent"))?;
        let json = serde_json::to_string_pretty(report).map_err(|e| DbError::Corrupt {
            path: path.clone(),
            message: e.to_string(),
        })?;
        fs::write(&path, json)?;
        Ok(())
    }

    /// Loads the stored static report for `(level, app)`, if any.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_static(&self, level: Level, app: &str) -> Result<Option<StaticReport>, DbError> {
        let path = self.static_path(level, app);
        match fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str(&text)
                .map(Some)
                .map_err(|e| DbError::Corrupt {
                    path,
                    message: e.to_string(),
                }),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Whether a static entry for `(level, app)` is stored.
    pub fn contains_static(&self, level: Level, app: &str) -> bool {
        self.static_path(level, app).is_file()
    }

    /// Loads every stored static report of one level, sorted by app name.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt entries.
    pub fn load_static_level(&self, level: Level) -> Result<Vec<StaticReport>, DbError> {
        let mut out = Vec::new();
        for (l, app) in self.list_static()? {
            if l == level {
                if let Some(report) = self.load_static(l, &app)? {
                    out.push(report);
                }
            }
        }
        out.sort_by(|a, b| a.app.cmp(&b.app));
        Ok(out)
    }

    /// Lists `(level, app)` pairs with stored static reports.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn list_static(&self) -> Result<Vec<(Level, String)>, DbError> {
        let mut out = Vec::new();
        for level in Level::ALL {
            let dir = self.root.join("static").join(level.label());
            let entries = match fs::read_dir(&dir) {
                Ok(entries) => entries,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            };
            for entry in entries {
                let name = entry?.file_name().to_string_lossy().into_owned();
                if let Some(app) = name.strip_suffix(".json") {
                    out.push((level, app.to_owned()));
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Writes an OS support spec in CSV form under `<root>/os/<name>.csv`.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn save_os_spec(&self, spec: &OsSpec) -> Result<PathBuf, DbError> {
        let dir = self.root.join("os");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", spec.name));
        fs::write(&path, spec.to_csv())?;
        Ok(path)
    }

    /// Reads an OS support spec back from CSV.
    ///
    /// # Errors
    ///
    /// I/O failures and unknown syscalls in the file.
    pub fn load_os_spec(&self, name: &str) -> Result<Option<OsSpec>, DbError> {
        let path = self.root.join("os").join(format!("{name}.csv"));
        match fs::read_to_string(&path) {
            Ok(text) => {
                OsSpec::from_csv(name, "db", &text)
                    .map(Some)
                    .map_err(|e| DbError::Corrupt {
                        path,
                        message: e.to_string(),
                    })
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

/// Conservative merge of two measurements of the same (app, workload):
/// traced counts accumulate; stub/fake capability is the logical AND
/// (anything that failed once is not safe); confirmation requires both;
/// conflict lists union (a conflict seen once is real); impact
/// annotations keep the worst observation of every metric; run
/// accounting accumulates (the merged entry cost both analyses).
pub fn merge_reports(a: &AppReport, b: &AppReport) -> AppReport {
    let mut merged = a.clone();
    merged.stats.absorb(&b.stats);
    for (s, n) in &b.traced {
        *merged.traced.entry(*s).or_insert(0) += *n;
    }
    // Fallback requirements union: a fallback path observed by either
    // measurement must be honoured by plans built on the merged entry.
    merged.fallbacks = a.fallbacks.union(&b.fallbacks);
    // Environment boundary counters accumulate like traced counts; the
    // first rejection of the earlier measurement stays first.
    for (s, n) in &b.rejections {
        *merged.rejections.entry(*s).or_insert(0) += *n;
    }
    for (s, n) in &b.fake_hits {
        *merged.fake_hits.entry(*s).or_insert(0) += *n;
    }
    if merged.first_rejection.is_none() {
        merged.first_rejection = b.first_rejection;
    }
    for (s, class_b) in &b.classes {
        let entry = merged.classes.entry(*s).or_insert(*class_b);
        *entry = FeatureClass {
            stub_ok: entry.stub_ok && class_b.stub_ok,
            fake_ok: entry.fake_ok && class_b.fake_ok,
        };
    }
    // Conflicts union, keeping a's feature order and appending b's new
    // entries in b's order: a feature that conflicted in either
    // measurement stays flagged in the merged entry.
    for s in &b.conflicts {
        if !merged.conflicts.contains(s) {
            merged.conflicts.push(*s);
        }
    }
    for (s, rec_b) in &b.impacts {
        let entry = merged.impacts.entry(*s).or_default();
        entry.stub = merge_impact(entry.stub, rec_b.stub);
        entry.fake = merge_impact(entry.fake, rec_b.fake);
    }
    for (key, class_b) in &b.sub_features {
        match merged.sub_features.iter_mut().find(|(k, _)| k == key) {
            Some((_, c)) => {
                *c = FeatureClass {
                    stub_ok: c.stub_ok && class_b.stub_ok,
                    fake_ok: c.fake_ok && class_b.fake_ok,
                }
            }
            None => merged.sub_features.push((*key, *class_b)),
        }
    }
    for (path, class_b) in &b.pseudo_files {
        let entry = merged.pseudo_files.entry(path.clone()).or_insert(*class_b);
        *entry = FeatureClass {
            stub_ok: entry.stub_ok && class_b.stub_ok,
            fake_ok: entry.fake_ok && class_b.fake_ok,
        };
    }
    merged.confirmed = a.confirmed && b.confirmed;
    merged
}

/// Conservative merge of two optional impact observations of the same
/// (syscall, mode): success only if every measured run succeeded, and
/// for each metric the worst (largest-magnitude) observed deviation —
/// repeated measurement must never make an impact look milder.
fn merge_impact(a: Option<Impact>, b: Option<Impact>) -> Option<Impact> {
    let worst = |x: f64, y: f64| if y.abs() > x.abs() { y } else { x };
    match (a, b) {
        (Some(a), Some(b)) => Some(Impact {
            success: a.success && b.success,
            tests_passed: match (a.tests_passed, b.tests_passed) {
                (Some(x), Some(y)) => Some(x && y),
                (known, None) | (None, known) => known,
            },
            perf_delta: worst(a.perf_delta, b.perf_delta),
            rss_delta: worst(a.rss_delta, b.rss_delta),
            fd_delta: worst(a.fd_delta, b.fd_delta),
        }),
        (only, None) | (None, only) => only,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_apps::registry;
    use loupe_core::{AnalysisConfig, Engine, ImpactRecord};
    use std::collections::BTreeMap;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("loupedb-test-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample_report() -> AppReport {
        let app = registry::find("hello-musl-static").unwrap();
        Engine::new(AnalysisConfig::fast())
            .analyze(app.as_ref(), Workload::HealthCheck)
            .unwrap()
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let db = Database::open(&dir).unwrap();
        let report = sample_report();
        db.save(&report).unwrap();
        let back = db
            .load(&report.app, Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(back, report);
        assert_eq!(db.list().unwrap().len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suite_namespace_roundtrips_and_stays_segregated() {
        let dir = tmpdir("suites");
        let db = Database::open(&dir).unwrap();
        let report = sample_report();
        db.save(&report).unwrap();

        let spec = loupe_plan::os::find("kerla").unwrap();
        let suite = ConformanceSuite::generate(&spec, &report, None);
        db.save_suite(&suite).unwrap();

        // Roundtrip is exact; overwriting replaces rather than merges.
        let back = db
            .load_suite("kerla", &report.app, Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(back, suite);
        let mut rewritten = suite.clone();
        rewritten.cases.truncate(1);
        db.save_suite(&rewritten).unwrap();
        let back = db
            .load_suite("kerla", &report.app, Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(back, rewritten, "suites overwrite, not merge");

        // The gentests namespace is invisible to the baseline listing,
        // and the bulk loaders see exactly the stored triples.
        assert_eq!(db.list().unwrap().len(), 1);
        assert_eq!(
            db.list_suites().unwrap(),
            vec![(
                "kerla".to_owned(),
                report.app.clone(),
                Workload::HealthCheck
            )]
        );
        assert_eq!(db.load_suites().unwrap(), vec![rewritten]);
        assert!(db
            .load_suite("gvisor", &report.app, Workload::HealthCheck)
            .unwrap()
            .is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_is_conservative() {
        let report = sample_report();
        let mut looser = report.clone();
        let first = *looser.classes.keys().next().unwrap();
        looser.classes.insert(
            first,
            FeatureClass {
                stub_ok: true,
                fake_ok: true,
            },
        );
        let mut stricter = report.clone();
        stricter.classes.insert(
            first,
            FeatureClass {
                stub_ok: false,
                fake_ok: true,
            },
        );
        // Conflicts seen by only one measurement must survive the merge
        // (regression: merge_reports used to drop b's conflicts wholesale).
        let second = *report.classes.keys().nth(1).unwrap();
        looser.conflicts = vec![first];
        stricter.conflicts = vec![first, second];
        // Impacts too: one side measured a stub impact the other missed,
        // and where both measured, the worse observation must win.
        let mild = Impact {
            success: true,
            tests_passed: Some(true),
            perf_delta: 0.01,
            rss_delta: 0.0,
            fd_delta: 0.0,
        };
        let harsh = Impact {
            success: false,
            tests_passed: Some(false),
            perf_delta: -0.40,
            rss_delta: 0.10,
            fd_delta: 0.0,
        };
        looser.impacts.clear();
        stricter.impacts.clear();
        looser.impacts.insert(
            first,
            ImpactRecord {
                stub: Some(mild),
                fake: None,
            },
        );
        stricter.impacts.insert(
            first,
            ImpactRecord {
                stub: Some(harsh),
                fake: None,
            },
        );
        stricter.impacts.insert(
            second,
            ImpactRecord {
                stub: None,
                fake: Some(mild),
            },
        );

        let merged = merge_reports(&looser, &stricter);
        let class = merged.classes[&first];
        assert!(!class.stub_ok, "one failed stub disqualifies");
        assert!(class.fake_ok);
        // Counts accumulate — including the run accounting.
        assert_eq!(merged.traced[&first], report.traced[&first] * 2);
        assert_eq!(
            merged.stats.total_runs(),
            report.stats.total_runs() * 2,
            "a merged entry cost both analyses"
        );
        assert_eq!(
            merged.conflicts,
            vec![first, second],
            "conflict lists union, keeping feature order"
        );
        let rec = merged.impacts[&first];
        let stub = rec.stub.expect("stub impact survives the merge");
        assert!(!stub.success, "one failed observation disqualifies");
        assert_eq!(stub.tests_passed, Some(false));
        assert_eq!(stub.perf_delta, -0.40, "worst deviation wins");
        assert_eq!(stub.rss_delta, 0.10);
        assert_eq!(
            merged.impacts[&second].fake,
            Some(mild),
            "an impact measured on only one side is kept"
        );
    }

    #[test]
    fn saving_twice_merges() {
        let dir = tmpdir("merge");
        let db = Database::open(&dir).unwrap();
        let report = sample_report();
        db.save(&report).unwrap();
        db.save(&report).unwrap();
        let back = db
            .load(&report.app, Workload::HealthCheck)
            .unwrap()
            .unwrap();
        let first = *report.traced.keys().next().unwrap();
        assert_eq!(back.traced[&first], report.traced[&first] * 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn os_spec_roundtrip() {
        let dir = tmpdir("os");
        let db = Database::open(&dir).unwrap();
        let spec = loupe_plan::os::find("kerla").unwrap();
        db.save_os_spec(&spec).unwrap();
        let back = db.load_os_spec("kerla").unwrap().unwrap();
        assert_eq!(back.supported, spec.supported);
        assert!(db.load_os_spec("nonexistent").unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_validation_roundtrip_and_listing() {
        use loupe_plan::{InitialVerdict, StepVerdict, SupportPlan};
        let dir = tmpdir("plans");
        let db = Database::open(&dir).unwrap();
        assert!(db.list_plan_validations().unwrap().is_empty());
        let validation = PlanValidation {
            os: "kerla".into(),
            workload: Workload::HealthCheck,
            plan: SupportPlan {
                os: "kerla".into(),
                initially_supported: vec!["hello".into()],
                steps: vec![],
            },
            initial: vec![InitialVerdict {
                app: "hello".into(),
                passes: true,
            }],
            steps: vec![StepVerdict {
                index: 1,
                app: "redis".into(),
                unlocked: true,
                locked_before: Some(true),
            }],
        };
        db.save_plan_validation(&validation).unwrap();
        let back = db
            .load_plan_validation("kerla", Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(back, validation);
        assert_eq!(
            db.list_plan_validations().unwrap(),
            vec![("kerla".to_owned(), Workload::HealthCheck)]
        );
        assert!(db
            .load_plan_validation("kerla", Workload::Benchmark)
            .unwrap()
            .is_none());
        // Validations live outside the measurement namespace.
        assert!(db.list().unwrap().is_empty());
        // Re-saving overwrites (no merge): one deterministic replay.
        let mut second = validation.clone();
        second.steps[0].unlocked = false;
        db.save_plan_validation(&second).unwrap();
        let back = db
            .load_plan_validation("kerla", Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(back, second);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restricted_env_reports_are_segregated_from_baselines() {
        let dir = tmpdir("env-seg");
        let db = Database::open(&dir).unwrap();
        let mut restricted = sample_report();
        restricted.env = "kerla-step3".into();
        db.save(&restricted).unwrap();

        // The dynamic (baseline) path must not see it: the cache key now
        // includes the execution environment.
        assert!(db
            .load(&restricted.app, Workload::HealthCheck)
            .unwrap()
            .is_none());
        assert!(!db.contains(&restricted.app, Workload::HealthCheck));
        assert!(db.list().unwrap().is_empty());
        // But the segregated namespace holds it.
        let back = db
            .load_env("kerla-step3", &restricted.app, Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(back, restricted);

        // Saving the Linux baseline afterwards does not merge with the
        // restricted entry: both coexist, each under its own key.
        let baseline = sample_report();
        db.save(&baseline).unwrap();
        let served = db
            .load(&baseline.app, Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(served, baseline, "baseline unpolluted by restricted run");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_restricted_entry_at_baseline_path_is_rejected() {
        // A database written before the env segregation could hold a
        // restricted-kernel measurement at the baseline path. The dynamic
        // load must reject (not serve) it, and a fresh save self-heals.
        let dir = tmpdir("env-legacy");
        let db = Database::open(&dir).unwrap();
        let mut stale = sample_report();
        stale.env = "restricted-os".into();
        let path = dir.join(&stale.app).join("health.json");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, serde_json::to_string(&stale).unwrap()).unwrap();

        assert!(
            db.load(&stale.app, Workload::HealthCheck)
                .unwrap()
                .is_none(),
            "restricted entry must not be served as a Linux baseline"
        );
        let fresh = sample_report();
        db.save(&fresh).unwrap();
        let served = db.load(&fresh.app, Workload::HealthCheck).unwrap().unwrap();
        assert_eq!(
            served, fresh,
            "fresh baseline overwrites the stale entry instead of merging"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn static_reports_live_in_their_own_level_keyed_namespace() {
        use loupe_static::{BinaryAnalyzer, SourceAnalyzer, StaticAnalyzer};
        let dir = tmpdir("static");
        let db = Database::open(&dir).unwrap();
        let app = registry::find("redis").unwrap();
        let bin = BinaryAnalyzer::new().analyze(app.as_ref());
        let src = SourceAnalyzer::new().analyze(app.as_ref());
        db.save_static(&bin).unwrap();
        db.save_static(&src).unwrap();

        // Levels do not collide with each other…
        assert_eq!(
            db.load_static(Level::Binary, "redis").unwrap().unwrap(),
            bin
        );
        assert_eq!(
            db.load_static(Level::Source, "redis").unwrap().unwrap(),
            src
        );
        assert!(db.contains_static(Level::Binary, "redis"));
        assert!(!db.contains_static(Level::Binary, "ghost"));
        assert_eq!(
            db.list_static().unwrap(),
            vec![
                (Level::Binary, "redis".to_owned()),
                (Level::Source, "redis".to_owned())
            ]
        );
        assert_eq!(db.load_static_level(Level::Source).unwrap(), vec![src]);
        // …nor with the dynamic namespace: no measurement entries exist.
        assert!(db.list().unwrap().is_empty());
        assert!(db.load("redis", Workload::HealthCheck).unwrap().is_none());

        // Re-saving overwrites (pure function, no merge).
        let mut altered = bin.clone();
        altered.syscalls = loupe_syscalls::SysnoSet::new();
        db.save_static(&altered).unwrap();
        assert_eq!(
            db.load_static(Level::Binary, "redis").unwrap().unwrap(),
            altered
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn matrix_cells_roundtrip_compose_and_stay_segregated() {
        use loupe_plan::{MatrixCell, TierOutcome};
        let dir = tmpdir("matrix");
        let db = Database::open(&dir).unwrap();
        assert!(db.list_matrix_cells().unwrap().is_empty());

        let vanilla_only = MatrixCell {
            os: "kerla".into(),
            app: "redis".into(),
            workload: Workload::HealthCheck,
            linux_pass: true,
            missing_required: [loupe_syscalls::Sysno::futex].into_iter().collect(),
            vanilla: Some(TierOutcome {
                pass: false,
                rejections: [(loupe_syscalls::Sysno::futex, 3)].into_iter().collect(),
                fake_hits: BTreeMap::new(),
                first_rejection: Some(loupe_syscalls::Sysno::futex),
            }),
            planned: None,
        };
        db.save_matrix_cell(&vanilla_only).unwrap();
        let back = db
            .load_matrix_cell("kerla", "redis", Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(back, vanilla_only);

        // A later planned-tier measurement composes with the stored
        // vanilla verdict instead of clobbering it.
        let planned_only = MatrixCell {
            vanilla: None,
            planned: Some(TierOutcome {
                pass: true,
                ..TierOutcome::default()
            }),
            ..vanilla_only.clone()
        };
        db.save_matrix_cell(&planned_only).unwrap();
        let composed = db
            .load_matrix_cell("kerla", "redis", Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert_eq!(composed.vanilla, vanilla_only.vanilla, "vanilla kept");
        assert_eq!(composed.planned, planned_only.planned, "planned added");

        // Listing and bulk load see the cell; the measurement namespaces
        // (baseline and env) do not.
        assert_eq!(
            db.list_matrix_cells().unwrap(),
            vec![(
                "kerla".to_owned(),
                "redis".to_owned(),
                Workload::HealthCheck
            )]
        );
        assert_eq!(db.load_matrix().unwrap(), vec![composed]);
        assert!(db.list().unwrap().is_empty());
        assert!(db.load("redis", Workload::HealthCheck).unwrap().is_none());
        assert!(db
            .load_env("kerla", "redis", Workload::HealthCheck)
            .unwrap()
            .is_none());
        assert!(db
            .load_matrix_cell("kerla", "redis", Workload::Benchmark)
            .unwrap()
            .is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn matrix_cells_coexist_with_env_reports_of_the_same_os() {
        use loupe_plan::MatrixCell;
        let dir = tmpdir("matrix-env");
        let db = Database::open(&dir).unwrap();
        let mut restricted = sample_report();
        restricted.env = "kerla".into();
        db.save(&restricted).unwrap();
        let cell = MatrixCell {
            os: "kerla".into(),
            app: restricted.app.clone(),
            workload: Workload::HealthCheck,
            linux_pass: true,
            missing_required: loupe_syscalls::SysnoSet::new(),
            vanilla: None,
            planned: None,
        };
        db.save_matrix_cell(&cell).unwrap();
        // Both live under env/kerla/ without shadowing each other.
        assert!(db
            .load_env("kerla", &restricted.app, Workload::HealthCheck)
            .unwrap()
            .is_some());
        assert_eq!(db.load_matrix().unwrap(), vec![cell]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_entry_is_none() {
        let dir = tmpdir("missing");
        let db = Database::open(&dir).unwrap();
        assert!(db.load("ghost", Workload::Benchmark).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }
}
