//! Cross-process advisory file lock for database writers.
//!
//! Every database save is a read-modify-write: reports merge with the
//! stored entry, matrix cells compose tiers, and the manifest flush
//! rewrites `manifest.json` wholesale. The in-process `write_lock`
//! mutex serialises writers inside one process; this module extends the
//! exclusion across processes — a fleet sweep and a serve-side rebuild
//! (or two concurrent sweeps) can no longer interleave their
//! load-compose-write cycles and drop each other's tiers.
//!
//! The lock is `flock(2)` on `<root>/.loupedb.lock`: advisory (readers
//! are unaffected and lock-free), crash-safe (the kernel releases it
//! with the file descriptor, so a killed sweep never wedges the
//! database) and reentrant across `Database` clones because callers
//! only take it under the in-process writer mutex. On non-Linux
//! targets the lock degrades to the in-process mutex alone.

use std::fs;
use std::io;
use std::path::Path;

/// Name of the lock file inside the database root.
pub const LOCK_FILE: &str = ".loupedb.lock";

/// An acquired exclusive advisory lock, released on drop.
#[derive(Debug)]
pub struct FileLock {
    // Held only for its descriptor; `flock` locks die with it.
    _file: fs::File,
}

impl FileLock {
    /// Blocks until the exclusive lock on `<root>/.loupedb.lock` is
    /// acquired. Creates the lock file if needed.
    ///
    /// # Errors
    ///
    /// Lock-file creation failures. `flock` failures are impossible on
    /// a freshly opened descriptor short of kernel resource exhaustion,
    /// which is surfaced as an I/O error.
    pub fn acquire(root: &Path) -> io::Result<FileLock> {
        let file = fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(root.join(LOCK_FILE))?;
        #[cfg(target_os = "linux")]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: a valid, owned descriptor; LOCK_EX blocks until
            // every other holder releases.
            let rc = unsafe { libc::flock(file.as_raw_fd(), libc::LOCK_EX) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(FileLock { _file: file })
    }
}

// The advisory lock is released by the kernel when `_file` drops; no
// explicit LOCK_UN is needed (and an explicit unlock before close would
// only widen the window between unlock and descriptor reuse).

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn lock_excludes_across_handles() {
        let dir = std::env::temp_dir().join(format!("loupe-lock-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        // Two threads, two independent lock handles on the same root:
        // the critical sections must never overlap.
        let inside = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let dir = dir.clone();
            let inside = Arc::clone(&inside);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let _lock = FileLock::acquire(&dir).unwrap();
                    assert_eq!(inside.fetch_add(1, Ordering::SeqCst), 0, "lock overlap");
                    inside.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
