//! Compact binary namespace snapshots — the warm sweep's hot read path.
//!
//! JSON stays the interchange format and the on-disk source of truth; a
//! snapshot is a *derived*, versioned cache of one whole namespace
//! (`<root>/index/<ns>.bin`) so a warm sweep can bulk-load hundreds of
//! artifacts with one read and zero JSON parsing, and a serve daemon
//! can memory-map the file and decode only the entries it is asked for.
//!
//! Staleness is content-addressed: the file header carries the
//! fingerprint of the namespace state (every `(key, output-fingerprint)`
//! pair in the manifest) at the time it was written. A reader supplies
//! the state it expects; anything else — missing file, other format
//! version, mismatched state, truncation, decode error — yields
//! [`None`] and the caller rebuilds from the JSON tree. Snapshots are
//! therefore safe to delete at any time.
//!
//! Layout (all integers little-endian, lengths as LEB128 varints):
//!
//! ```text
//! magic   b"LOUPEBIN"          8 bytes
//! version u32                  4 bytes   (see FORMAT_VERSION)
//! state   u128 fingerprint    16 bytes
//! count   u64                  8 bytes
//! entry*  key-len, key-utf8, value-len, value-bytes
//! ```
//!
//! The value-length prefix (new in format v2) is what makes lazy reads
//! possible: [`MappedSnapshot::open`] builds a key → byte-range table
//! by *skipping* over values, so opening a snapshot touches only keys
//! and decodes nothing until [`MappedSnapshot::get`] is called.
//!
//! Values use a tagged encoding of the serde [`Value`] tree: 0 null,
//! 1 false, 2 true, 3 u64 varint, 4 i64 zigzag varint, 5 f64 bits,
//! 6 string, 7 sequence, 8 map.
//!
//! Mapping safety: snapshot files are only ever replaced via temp-file
//! rename (a fresh inode), never truncated or rewritten in place, so a
//! live mapping can never observe partial bytes or fault on a shrunk
//! file.

use std::collections::BTreeMap;
use std::fs;
use std::ops::Range;
use std::path::Path;

use loupe_core::Fingerprint;
use serde::Value;

/// Binary snapshot format version. Bump on any layout change; readers
/// of other versions treat the file as stale. v2 added the value-length
/// prefix enabling memory-mapped lazy decode.
pub const FORMAT_VERSION: u32 = 2;

const MAGIC: &[u8; 8] = b"LOUPEBIN";

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_I64: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_SEQ: u8 = 7;
const TAG_MAP: u8 = 8;

fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends the tagged encoding of `value` to `out`.
pub fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::U64(n) => {
            out.push(TAG_U64);
            put_varint(*n, out);
        }
        Value::I64(n) => {
            out.push(TAG_I64);
            put_varint(zigzag(*n), out);
        }
        Value::F64(x) => {
            out.push(TAG_F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            put_varint(items.len() as u64, out);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(pairs) => {
            out.push(TAG_MAP);
            put_varint(pairs.len() as u64, out);
            for (k, v) in pairs {
                encode_value(k, out);
                encode_value(v, out);
            }
        }
    }
}

/// Decodes one tagged value at `pos`, advancing it. `None` on any
/// malformation (the caller falls back to the JSON tree).
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Option<Value> {
    let tag = *buf.get(*pos)?;
    *pos += 1;
    Some(match tag {
        TAG_NULL => Value::Null,
        TAG_FALSE => Value::Bool(false),
        TAG_TRUE => Value::Bool(true),
        TAG_U64 => Value::U64(get_varint(buf, pos)?),
        TAG_I64 => Value::I64(unzigzag(get_varint(buf, pos)?)),
        TAG_F64 => {
            let bytes: [u8; 8] = buf.get(*pos..*pos + 8)?.try_into().ok()?;
            *pos += 8;
            Value::F64(f64::from_bits(u64::from_le_bytes(bytes)))
        }
        TAG_STR => {
            let len = get_varint(buf, pos)? as usize;
            let bytes = buf.get(*pos..*pos + len)?;
            *pos += len;
            Value::Str(String::from_utf8(bytes.to_vec()).ok()?)
        }
        TAG_SEQ => {
            let len = get_varint(buf, pos)? as usize;
            let mut items = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                items.push(decode_value(buf, pos)?);
            }
            Value::Seq(items)
        }
        TAG_MAP => {
            let len = get_varint(buf, pos)? as usize;
            let mut pairs = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                let k = decode_value(buf, pos)?;
                let v = decode_value(buf, pos)?;
                pairs.push((k, v));
            }
            Value::Map(pairs)
        }
        _ => return None,
    })
}

/// A read-only byte buffer backing a snapshot: the file memory-mapped
/// where the platform allows it, a heap copy otherwise. Either way the
/// bytes are immutable for the buffer's lifetime (snapshot files are
/// replaced by rename, never mutated in place).
pub struct Mapped {
    repr: MappedRepr,
}

enum MappedRepr {
    #[cfg(target_os = "linux")]
    Mmap {
        ptr: *mut libc::c_void,
        len: usize,
    },
    Heap(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE over an inode that is
// never modified in place — immutable shared bytes, like a `&[u8]`.
unsafe impl Send for Mapped {}
unsafe impl Sync for Mapped {}

impl Mapped {
    /// Maps (or, failing that, reads) `path`. `None` only if the file
    /// cannot be read at all.
    fn open(path: &Path) -> Option<Mapped> {
        #[cfg(target_os = "linux")]
        {
            use std::os::unix::io::AsRawFd;
            if let Ok(file) = fs::File::open(path) {
                let len = file.metadata().ok()?.len() as usize;
                if len > 0 {
                    // SAFETY: fresh descriptor, in-bounds length; the
                    // result is checked against MAP_FAILED.
                    let ptr = unsafe {
                        libc::mmap(
                            std::ptr::null_mut(),
                            len,
                            libc::PROT_READ,
                            libc::MAP_PRIVATE,
                            file.as_raw_fd(),
                            0,
                        )
                    };
                    if ptr != libc::MAP_FAILED {
                        return Some(Mapped {
                            repr: MappedRepr::Mmap { ptr, len },
                        });
                    }
                }
            }
        }
        fs::read(path).ok().map(|bytes| Mapped {
            repr: MappedRepr::Heap(bytes),
        })
    }

    fn bytes(&self) -> &[u8] {
        match &self.repr {
            #[cfg(target_os = "linux")]
            // SAFETY: ptr/len come from a successful mmap that lives
            // until drop.
            MappedRepr::Mmap { ptr, len } => unsafe {
                std::slice::from_raw_parts((*ptr).cast::<u8>(), *len)
            },
            MappedRepr::Heap(bytes) => bytes,
        }
    }
}

impl Drop for Mapped {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let MappedRepr::Mmap { ptr, len } = self.repr {
            // SAFETY: unmapping exactly what mmap returned.
            unsafe { libc::munmap(ptr, len) };
        }
    }
}

impl std::fmt::Debug for Mapped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.repr {
            #[cfg(target_os = "linux")]
            MappedRepr::Mmap { .. } => "mmap",
            MappedRepr::Heap(_) => "heap",
        };
        write!(f, "Mapped({kind}, {} bytes)", self.bytes().len())
    }
}

/// A validated snapshot whose values have *not* been decoded: opening
/// one costs a header check plus a key scan (values are skipped via
/// their length prefix), and each [`get`](MappedSnapshot::get) decodes
/// exactly one value out of the mapped bytes.
#[derive(Debug)]
pub struct MappedSnapshot {
    buf: Mapped,
    /// Key → byte range of the (still encoded) value.
    index: BTreeMap<String, Range<usize>>,
}

impl MappedSnapshot {
    /// Opens `path`, returning a lazily decodable view only if the
    /// header matches `expected_state` (and the current format version)
    /// and the entry table is structurally sound.
    pub fn open(path: &Path, expected_state: Fingerprint) -> Option<MappedSnapshot> {
        let mapped = Mapped::open(path)?;
        let buf = mapped.bytes();
        if buf.len() < 8 + 4 + 16 + 8 || &buf[..8] != MAGIC {
            return None;
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().ok()?);
        if version != FORMAT_VERSION {
            return None;
        }
        let state = u128::from_le_bytes(buf[12..28].try_into().ok()?);
        if Fingerprint::from_u128(state) != expected_state {
            return None;
        }
        let count = u64::from_le_bytes(buf[28..36].try_into().ok()?) as usize;
        let mut pos = 36;
        let mut index = BTreeMap::new();
        for _ in 0..count {
            let key_len = get_varint(buf, &mut pos)? as usize;
            let key_bytes = buf.get(pos..pos + key_len)?;
            pos += key_len;
            let key = String::from_utf8(key_bytes.to_vec()).ok()?;
            let value_len = get_varint(buf, &mut pos)? as usize;
            buf.get(pos..pos + value_len)?; // bounds check only
            index.insert(key, pos..pos + value_len);
            pos += value_len;
        }
        if pos != buf.len() {
            return None; // trailing garbage: treat as corrupt
        }
        Some(MappedSnapshot { buf: mapped, index })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The stored keys, in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.index.keys().map(String::as_str)
    }

    /// Decodes the value stored under `key`, if any. `None` for both
    /// an absent key and a malformed value (callers fall back to the
    /// JSON tree either way).
    pub fn get(&self, key: &str) -> Option<Value> {
        self.decode_range(self.index.get(key)?)
    }

    fn decode_range(&self, range: &Range<usize>) -> Option<Value> {
        let bytes = &self.buf.bytes()[range.clone()];
        let mut pos = 0;
        let value = decode_value(bytes, &mut pos)?;
        (pos == bytes.len()).then_some(value)
    }

    /// Decodes every entry, in key order. `None` if any value is
    /// malformed — all-or-nothing, matching the eager reader's
    /// contract.
    pub fn decode_all(&self) -> Option<Vec<(String, Value)>> {
        self.index
            .iter()
            .map(|(key, range)| Some((key.clone(), self.decode_range(range)?)))
            .collect()
    }
}

/// Reads a snapshot eagerly, returning its entries only if it matches
/// `expected_state` (and the current format version) exactly.
pub fn read(path: &Path, expected_state: Fingerprint) -> Option<Vec<(String, Value)>> {
    MappedSnapshot::open(path, expected_state)?.decode_all()
}

/// Writes a snapshot for `entries` tagged with `state`. Best-effort
/// atomic (temp file + rename); errors are reported but harmless — a
/// missing snapshot only costs the next rebuild.
pub fn write<'a>(
    path: &Path,
    state: Fingerprint,
    entries: impl ExactSizeIterator<Item = (&'a str, &'a Value)>,
) -> std::io::Result<()> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&state.to_u128().to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    let mut scratch = Vec::new();
    for (key, value) in entries {
        put_varint(key.len() as u64, &mut buf);
        buf.extend_from_slice(key.as_bytes());
        scratch.clear();
        encode_value(value, &mut scratch);
        put_varint(scratch.len() as u64, &mut buf);
        buf.extend_from_slice(&scratch);
    }
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension("bin.tmp");
    fs::write(&tmp, &buf)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_core::fingerprint_of;

    fn sample() -> Value {
        Value::Map(vec![
            (Value::Str("name".into()), Value::Str("redis".into())),
            (
                Value::Str("counts".into()),
                Value::Seq(vec![Value::U64(3), Value::I64(-7), Value::F64(0.25)]),
            ),
            (Value::Str("ok".into()), Value::Bool(true)),
            (Value::Str("none".into()), Value::Null),
        ])
    }

    #[test]
    fn value_codec_roundtrips() {
        let v = sample();
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_value(&buf, &mut pos), Some(v));
        assert_eq!(pos, buf.len());

        // Varint edges.
        for n in [0u64, 127, 128, u64::MAX] {
            let mut buf = Vec::new();
            encode_value(&Value::U64(n), &mut buf);
            let mut pos = 0;
            assert_eq!(decode_value(&buf, &mut pos), Some(Value::U64(n)));
        }
        for n in [0i64, -1, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            encode_value(&Value::I64(n), &mut buf);
            let mut pos = 0;
            assert_eq!(decode_value(&buf, &mut pos), Some(Value::I64(n)));
        }

        // Truncation never panics, just returns None.
        let mut full = Vec::new();
        encode_value(&sample(), &mut full);
        for cut in 0..full.len() {
            let mut pos = 0;
            let _ = decode_value(&full[..cut], &mut pos);
        }
    }

    #[test]
    fn snapshot_roundtrips_and_rejects_stale_state() {
        let dir = std::env::temp_dir().join(format!("loupe-snap-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("index").join("matrix.bin");
        let state = fingerprint_of(&"state-1");
        let v = sample();
        let entries = vec![("kerla/redis/health".to_owned(), v.clone())];
        write(&path, state, entries.iter().map(|(k, v)| (k.as_str(), v))).unwrap();

        assert_eq!(read(&path, state), Some(entries.clone()));
        assert_eq!(
            read(&path, fingerprint_of(&"state-2")),
            None,
            "a snapshot of other content is stale"
        );
        assert_eq!(read(&dir.join("missing.bin"), state), None);

        // Corrupt tail → rejected wholesale.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0xff);
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read(&path, state), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_snapshot_decodes_lazily_per_key() {
        let dir = std::env::temp_dir().join(format!("loupe-mmap-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("index").join("matrix.bin");
        let state = fingerprint_of(&"mmap-state");
        let entries: Vec<(String, Value)> = (0..8)
            .map(|i| (format!("os/app-{i}/health"), sample()))
            .collect();
        write(&path, state, entries.iter().map(|(k, v)| (k.as_str(), v))).unwrap();

        let snap = MappedSnapshot::open(&path, state).expect("snapshot opens");
        assert_eq!(snap.len(), 8);
        assert_eq!(
            snap.keys().collect::<Vec<_>>(),
            entries.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>()
        );
        // Point decode out of the mapped bytes.
        assert_eq!(snap.get("os/app-3/health"), Some(sample()));
        assert_eq!(snap.get("os/app-99/health"), None);
        // Wholesale decode matches the eager reader.
        assert_eq!(snap.decode_all(), Some(entries));

        // Stale state / corrupt header are rejected at open time.
        assert!(MappedSnapshot::open(&path, fingerprint_of(&"other")).is_none());
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes()); // format v1
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            MappedSnapshot::open(&path, state).is_none(),
            "pre-v2 snapshots (no value-length prefix) read as stale"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
