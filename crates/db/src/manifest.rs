//! The cache manifest: provenance records for every stored artifact.
//!
//! The manifest is the dependency graph of the incremental sweep engine.
//! For each artifact the database stores (baseline report, restricted-env
//! report, matrix cell, static report, plan validation, conformance
//! suite) it keeps an [`ArtifactRecord`]: the fingerprint of the stored
//! *output* and, once a sweep stage has attached provenance, the
//! fingerprints of the *inputs* that produced it. A stage asks "is this
//! cell current?" with one map lookup — current means a record exists,
//! has provenance, and every recorded input fingerprint equals the
//! freshly computed one. Editing one OS profile changes that profile's
//! fingerprint and therefore invalidates exactly the cells downstream of
//! it; everything else stays current.
//!
//! The manifest is **derived data**. It lives in `manifest.json` at the
//! database root; if it is missing, corrupt, or from a different format
//! version it is treated as empty and the engine degrades to re-measuring
//! (never to serving stale artifacts): an artifact without provenance is
//! *not* current. Raw `Database::save_*` writes reset the record's inputs
//! for the same reason — content that did not come through a sweep stage
//! has unknown provenance until the stage re-attaches it.

use std::collections::BTreeMap;

use loupe_core::Fingerprint;
use serde::{Deserialize, Serialize};

/// Current manifest format version. Bump when the record shape or the
/// fingerprint function changes; a version mismatch empties the manifest
/// (artifacts stay, provenance is re-learned on the next sweep).
pub const MANIFEST_VERSION: u32 = 1;

/// Artifact namespaces tracked by the manifest. These mirror the on-disk
/// layout of the database.
pub mod ns {
    /// Full-Linux baseline reports (`<root>/<app>/<wl>.json`).
    pub const BASELINES: &str = "baselines";
    /// Restricted-environment reports (`env/<env>/<app>/<wl>.json`).
    pub const ENV: &str = "env";
    /// Fleet × OS matrix cells (`env/<os>/matrix/<app>/<wl>.json`).
    pub const MATRIX: &str = "matrix";
    /// Plan validations (`plans/<os>/<wl>.json`).
    pub const PLANS: &str = "plans";
    /// Static-analysis reports (`static/<level>/<app>.json`).
    pub const STATIC: &str = "static";
    /// Conformance suites (`gentests/<os>/<wl>/<app>.json`).
    pub const SUITES: &str = "suites";

    /// Every tracked namespace, in display order.
    pub const ALL: &[&str] = &[BASELINES, ENV, MATRIX, PLANS, STATIC, SUITES];
}

/// Provenance record for one stored artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactRecord {
    /// Fingerprints of the inputs that produced the artifact, keyed by
    /// role (`"os"`, `"requirement"`, …). `None` means provenance is
    /// unknown — the artifact exists but is never considered current.
    #[serde(default)]
    pub inputs: Option<BTreeMap<String, Fingerprint>>,
    /// Fingerprint of the stored artifact itself.
    pub output: Fingerprint,
    /// Small facts about the artifact a stage can use without loading it
    /// (e.g. which matrix tiers are covered, a suite's case counts).
    #[serde(default)]
    pub meta: BTreeMap<String, String>,
}

/// Hit/miss/stale counters for one namespace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Artifacts served from cache (inputs current).
    #[serde(default)]
    pub hits: u64,
    /// Artifacts computed because nothing was stored.
    #[serde(default)]
    pub misses: u64,
    /// Artifacts recomputed because their recorded inputs no longer
    /// match (or their provenance was unknown).
    #[serde(default)]
    pub stale: u64,
}

impl CacheCounters {
    /// Total cache decisions taken.
    pub fn total(self) -> u64 {
        self.hits + self.misses + self.stale
    }
}

/// Per-namespace cache counters for one sweep session.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Counters keyed by namespace (see [`ns`]).
    #[serde(default)]
    pub namespaces: BTreeMap<String, CacheCounters>,
}

impl CacheStats {
    /// Records a cache hit in `namespace`.
    pub fn hit(&mut self, namespace: &str) {
        self.entry(namespace).hits += 1;
    }

    /// Records a cache miss in `namespace`.
    pub fn miss(&mut self, namespace: &str) {
        self.entry(namespace).misses += 1;
    }

    /// Records a stale recomputation in `namespace`.
    pub fn stale(&mut self, namespace: &str) {
        self.entry(namespace).stale += 1;
    }

    fn entry(&mut self, namespace: &str) -> &mut CacheCounters {
        self.namespaces.entry(namespace.to_owned()).or_default()
    }

    /// Whether no decision has been recorded.
    pub fn is_empty(&self) -> bool {
        self.namespaces.values().all(|c| c.total() == 0)
    }

    /// Summed counters across all namespaces.
    pub fn total(&self) -> CacheCounters {
        let mut out = CacheCounters::default();
        for c in self.namespaces.values() {
            out.hits += c.hits;
            out.misses += c.misses;
            out.stale += c.stale;
        }
        out
    }
}

/// The persisted manifest: provenance records per namespace plus the
/// cache counters of the last completed sweep.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version (see [`MANIFEST_VERSION`]).
    pub version: u32,
    /// Counters persisted by the last sweep (`loupe cache stats`).
    #[serde(default)]
    pub last_sweep: Option<CacheStats>,
    /// `namespace → key → record`.
    #[serde(default)]
    pub records: BTreeMap<String, BTreeMap<String, ArtifactRecord>>,
}

impl Manifest {
    /// A fresh, empty manifest at the current version.
    pub fn new() -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            last_sweep: None,
            records: BTreeMap::new(),
        }
    }

    /// Parses a manifest from JSON, treating anything unusable (bad
    /// JSON, wrong version) as empty — the manifest is derived data.
    pub fn from_json(text: &str) -> Manifest {
        match serde_json::from_str::<Manifest>(text) {
            Ok(m) if m.version == MANIFEST_VERSION => m,
            _ => Manifest::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_core::fingerprint_of;

    #[test]
    fn manifest_roundtrips_and_bad_input_is_empty() {
        let mut m = Manifest::new();
        let mut inputs = BTreeMap::new();
        inputs.insert("os".to_owned(), fingerprint_of(&"kerla"));
        m.records.entry(ns::MATRIX.to_owned()).or_default().insert(
            "kerla/redis/health".to_owned(),
            ArtifactRecord {
                inputs: Some(inputs),
                output: fingerprint_of(&"cell"),
                meta: [("tiers".to_owned(), "both".to_owned())].into(),
            },
        );
        let mut stats = CacheStats::default();
        stats.hit(ns::MATRIX);
        stats.stale(ns::BASELINES);
        m.last_sweep = Some(stats);

        let json = serde_json::to_string_pretty(&m).unwrap();
        assert_eq!(Manifest::from_json(&json), m);

        assert_eq!(Manifest::from_json("not json"), Manifest::new());
        let future = json.replacen(
            &format!("\"version\": {MANIFEST_VERSION}"),
            "\"version\": 999",
            1,
        );
        assert_eq!(
            Manifest::from_json(&future),
            Manifest::new(),
            "unknown versions degrade to an empty manifest"
        );
    }

    #[test]
    fn cache_stats_accumulate() {
        let mut stats = CacheStats::default();
        assert!(stats.is_empty());
        stats.hit(ns::MATRIX);
        stats.hit(ns::MATRIX);
        stats.miss(ns::SUITES);
        stats.stale(ns::MATRIX);
        assert!(!stats.is_empty());
        let m = stats.namespaces[ns::MATRIX];
        assert_eq!((m.hits, m.misses, m.stale), (2, 0, 1));
        assert_eq!(m.total(), 3);
        let t = stats.total();
        assert_eq!((t.hits, t.misses, t.stale), (2, 1, 1));
    }
}
