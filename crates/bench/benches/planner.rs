//! Criterion benches for the planner: support-plan generation, empirical
//! plan validation, and API importance, scaling up to the full 116-app
//! fleet.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use loupe_apps::{registry, Workload};
use loupe_bench::{analyze_apps, requirements};
use loupe_plan::{api_importance, os, AppRequirement, PlanValidator, SupportPlan};

fn measured_requirements(n: usize) -> Vec<AppRequirement> {
    let apps: Vec<_> = registry::dataset().into_iter().take(n).collect();
    let reports = analyze_apps(apps, Workload::HealthCheck);
    requirements(&reports)
}

fn bench_plan_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan");
    for n in [8usize, 16, 32, 116] {
        let reqs = measured_requirements(n);
        let spec = os::find("kerla").unwrap();
        group.bench_with_input(BenchmarkId::new("generate", n), &reqs, |b, reqs| {
            b.iter(|| black_box(SupportPlan::generate(&spec, reqs).steps.len()));
        });
    }
    group.finish();
}

fn bench_plan_validation(c: &mut Criterion) {
    // Replaying a plan runs every unlocked app twice (step k and k-1) on
    // a restricted kernel: the cost of turning predictions into verdicts
    // over the whole fleet.
    let workload = Workload::HealthCheck;
    let reqs = measured_requirements(116);
    let spec = os::find("kerla").unwrap();
    let plan = SupportPlan::generate(&spec, &reqs);
    let validator = PlanValidator::new();
    let mut group = c.benchmark_group("plan");
    group.sample_size(10);
    group.bench_function("validate/kerla-116-apps", |b| {
        b.iter(|| {
            let v = validator
                .validate(&spec, &plan, &reqs, workload, registry::find)
                .unwrap();
            black_box(v.is_valid())
        });
    });
    group.finish();
}

fn bench_importance(c: &mut Criterion) {
    let reqs = measured_requirements(32);
    let sets: Vec<_> = reqs.iter().map(|r| r.traced.clone()).collect();
    c.bench_function("importance/32-apps", |b| {
        b.iter(|| black_box(api_importance(&sets).len()));
    });
}

criterion_group!(
    benches,
    bench_plan_generation,
    bench_plan_validation,
    bench_importance
);
criterion_main!(benches);
