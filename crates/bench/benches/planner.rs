//! Criterion benches for the planner: support-plan generation and API
//! importance, scaling with fleet size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use loupe_apps::{registry, Workload};
use loupe_bench::{analyze_apps, requirements};
use loupe_plan::{api_importance, os, AppRequirement, SupportPlan};

fn measured_requirements(n: usize) -> Vec<AppRequirement> {
    let apps: Vec<_> = registry::dataset().into_iter().take(n).collect();
    let reports = analyze_apps(apps, Workload::HealthCheck);
    requirements(&reports)
}

fn bench_plan_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan");
    for n in [8usize, 16, 32] {
        let reqs = measured_requirements(n);
        let spec = os::find("kerla").unwrap();
        group.bench_with_input(BenchmarkId::new("generate", n), &reqs, |b, reqs| {
            b.iter(|| black_box(SupportPlan::generate(&spec, reqs).steps.len()));
        });
    }
    group.finish();
}

fn bench_importance(c: &mut Criterion) {
    let reqs = measured_requirements(32);
    let sets: Vec<_> = reqs.iter().map(|r| r.traced.clone()).collect();
    c.bench_function("importance/32-apps", |b| {
        b.iter(|| black_box(api_importance(&sets).len()));
    });
}

criterion_group!(benches, bench_plan_generation, bench_importance);
criterion_main!(benches);
