//! Criterion benches for the measurement stack: kernel dispatch,
//! interposition overhead, and full Loupe analyses (the §3.3 run-time
//! discussion).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use loupe_apps::{registry, Env, Exit, Workload};
use loupe_core::{Action, AnalysisConfig, Engine, Interposed, Policy};
use loupe_kernel::{Invocation, Kernel, LinuxSim};
use loupe_syscalls::Sysno;

fn bench_kernel_dispatch(c: &mut Criterion) {
    c.bench_function("kernel/getpid", |b| {
        let mut k = LinuxSim::new();
        let inv = Invocation::new(Sysno::getpid, [0; 6]);
        b.iter(|| black_box(k.syscall(&inv).ret));
    });
    c.bench_function("kernel/write-tty", |b| {
        let mut k = LinuxSim::new();
        b.iter_batched(
            || Invocation::new(Sysno::write, [1, 0, 0, 0, 0, 0]).with_data(vec![b'x'; 256]),
            |inv| black_box(k.syscall(&inv).ret),
            BatchSize::SmallInput,
        );
    });
}

fn bench_interposition(c: &mut Criterion) {
    c.bench_function("interpose/allow", |b| {
        let mut k = Interposed::new(LinuxSim::new(), Policy::allow_all());
        let inv = Invocation::new(Sysno::getpid, [0; 6]);
        b.iter(|| black_box(k.syscall(&inv).ret));
    });
    c.bench_function("interpose/stub", |b| {
        let policy = Policy::allow_all().with_syscall(Sysno::getpid, Action::Stub);
        let mut k = Interposed::new(LinuxSim::new(), policy);
        let inv = Invocation::new(Sysno::getpid, [0; 6]);
        b.iter(|| black_box(k.syscall(&inv).ret));
    });
}

fn bench_single_run(c: &mut Criterion) {
    c.bench_function("run/nginx-bench-baseline", |b| {
        let app = registry::find("nginx").unwrap();
        b.iter(|| {
            let mut sim = LinuxSim::new();
            app.provision(&mut sim);
            let mut kernel = Interposed::new(sim, Policy::allow_all());
            let mut env = Env::new(&mut kernel);
            let res = app.run(&mut env, Workload::Benchmark);
            let out = match res {
                Ok(()) => env.finish(Exit::Clean),
                Err(e) => env.finish(e),
            };
            black_box(out.responses)
        });
    });
}

fn bench_full_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    group.bench_function("weborf-health", |b| {
        let app = registry::find("weborf").unwrap();
        let engine = Engine::new(AnalysisConfig::fast());
        b.iter(|| {
            black_box(
                engine
                    .analyze(app.as_ref(), Workload::HealthCheck)
                    .unwrap()
                    .required()
                    .len(),
            )
        });
    });
    group.bench_function("redis-bench", |b| {
        let app = registry::find("redis").unwrap();
        let engine = Engine::new(AnalysisConfig::fast());
        b.iter(|| {
            black_box(
                engine
                    .analyze(app.as_ref(), Workload::Benchmark)
                    .unwrap()
                    .required()
                    .len(),
            )
        });
    });
    group.finish();
}

fn bench_probe_scheduler(c: &mut Criterion) {
    // The ISSUE-2 tentpole: serial vs parallel vs hinted analysis of the
    // same (app, workload). Parallel fans the per-feature stub/fake
    // probes out on the bounded worker pool; hinted skips the probes the
    // teacher fleet already agrees on (§6). All three produce identical
    // classes — the determinism tests prove it — so the delta is pure
    // scheduling.
    let app = registry::find("redis").unwrap();
    let teachers: Vec<_> = ["nginx", "lighttpd", "weborf"]
        .iter()
        .map(|n| {
            let t = registry::find(n).unwrap();
            Engine::new(AnalysisConfig::fast())
                .analyze(t.as_ref(), Workload::Benchmark)
                .unwrap()
        })
        .collect();
    let mut hints = loupe_core::transfer_hints(&teachers, 3);
    hints.retain(|_, class| class.is_avoidable());

    let mut group = c.benchmark_group("probe-scheduler");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        let engine = Engine::new(AnalysisConfig {
            jobs: 1,
            ..AnalysisConfig::fast()
        });
        b.iter(|| {
            black_box(
                engine
                    .analyze(app.as_ref(), Workload::Benchmark)
                    .unwrap()
                    .stats
                    .total_runs(),
            )
        });
    });
    group.bench_function("parallel-auto", |b| {
        let engine = Engine::new(AnalysisConfig {
            jobs: 0,
            ..AnalysisConfig::fast()
        });
        b.iter(|| {
            black_box(
                engine
                    .analyze(app.as_ref(), Workload::Benchmark)
                    .unwrap()
                    .stats
                    .total_runs(),
            )
        });
    });
    group.bench_function("hinted", |b| {
        let engine = Engine::new(AnalysisConfig::fast());
        b.iter(|| {
            black_box(
                engine
                    .analyze_with_hints(app.as_ref(), Workload::Benchmark, &hints)
                    .unwrap()
                    .stats
                    .total_runs(),
            )
        });
    });
    group.bench_function("parallel-hinted", |b| {
        let engine = Engine::new(AnalysisConfig {
            jobs: 0,
            ..AnalysisConfig::fast()
        });
        b.iter(|| {
            black_box(
                engine
                    .analyze_with_hints(app.as_ref(), Workload::Benchmark, &hints)
                    .unwrap()
                    .stats
                    .total_runs(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kernel_dispatch,
    bench_interposition,
    bench_single_run,
    bench_full_analysis,
    bench_probe_scheduler
);
criterion_main!(benches);
