//! Criterion benches for the fleet-sweep driver: cold sweeps at several
//! worker counts (the bounded-pool scaling story) and the pure
//! cache-hit path (the shared-database story, §3.3).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use loupe_apps::{registry, Workload};
use loupe_db::Database;
use loupe_sweep::{Sweep, SweepConfig};

fn tmp_db(tag: &str) -> Database {
    let dir = std::env::temp_dir().join(format!("loupe-bench-sweep-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    Database::open(dir).expect("open bench db")
}

fn sweep_with_workers(workers: usize) -> Sweep {
    Sweep::new(SweepConfig {
        workloads: vec![Workload::HealthCheck],
        workers,
        ..SweepConfig::default()
    })
}

fn bench_cold_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep-cold");
    group.sample_size(10);
    for workers in [1usize, 4, 0] {
        let label = if workers == 0 {
            "auto".to_owned()
        } else {
            workers.to_string()
        };
        group.bench_function(format!("detailed-12/workers-{label}"), |b| {
            let sweep = sweep_with_workers(workers);
            b.iter(|| {
                let db = tmp_db("cold");
                let summary = sweep.run(&db, registry::detailed()).expect("sweep");
                std::fs::remove_dir_all(db.root()).ok();
                black_box(summary.analyzed)
            });
        });
    }
    group.finish();
}

fn bench_cached_sweep(c: &mut Criterion) {
    let db = tmp_db("cached");
    let sweep = sweep_with_workers(0);
    sweep.run(&db, registry::dataset()).expect("warm the cache");
    let mut group = c.benchmark_group("sweep-cached");
    group.sample_size(10);
    group.bench_function("dataset-116", |b| {
        b.iter(|| {
            let summary = sweep.run(&db, registry::dataset()).expect("sweep");
            assert_eq!(summary.analyzed, 0, "everything cached");
            black_box(summary.cached)
        });
    });
    group.finish();
    std::fs::remove_dir_all(db.root()).ok();
}

fn bench_render(c: &mut Criterion) {
    let db = tmp_db("render");
    sweep_with_workers(0)
        .run(&db, registry::dataset())
        .expect("seed db");
    c.bench_function("report/render-116", |b| {
        b.iter(|| {
            black_box(
                loupe_sweep::report::render(&db)
                    .expect("render")
                    .files
                    .len(),
            )
        });
    });
    std::fs::remove_dir_all(db.root()).ok();
}

criterion_group!(benches, bench_cold_sweep, bench_cached_sweep, bench_render);
criterion_main!(benches);
