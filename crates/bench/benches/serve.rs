//! Criterion benches for the serve daemon: the cached single-verdict
//! roundtrip (the sub-millisecond target) and cold startup — with the
//! binary snapshot index present (memory-mapped, decoded lazily) vs
//! the JSON-per-file fallback, the before/after of the mmap satellite.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

use loupe_apps::Workload;
use loupe_db::Database;
use loupe_plan::{os, MatrixCell, TierOutcome};
use loupe_serve::{Client, Request, ServeConfig, Server};
use loupe_syscalls::SysnoSet;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("loupe-bench-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Fleet-scale synthetic corpus: 11 curated OSes x 64 app names x 2
/// workloads = 1408 cells (no measurement; serving is what's timed).
fn populate(dir: &PathBuf) {
    let db = Database::open(dir).expect("open db");
    let apps: Vec<String> = (0..64).map(|i| format!("app-{i:02}")).collect();
    for (i, spec) in os::db().iter().enumerate() {
        for (j, app) in apps.iter().enumerate() {
            for workload in [Workload::HealthCheck, Workload::Benchmark] {
                let pass = (i + j) % 2 == 0;
                db.save_matrix_cell_replacing(&MatrixCell {
                    os: spec.name.clone(),
                    app: app.clone(),
                    workload,
                    linux_pass: true,
                    missing_required: SysnoSet::new(),
                    vanilla: Some(TierOutcome {
                        pass,
                        ..TierOutcome::default()
                    }),
                    planned: Some(TierOutcome {
                        pass,
                        ..TierOutcome::default()
                    }),
                    missing_required_flags: Vec::new(),
                })
                .expect("seed cell");
            }
        }
    }
    db.flush().expect("flush");
}

/// One request/answer roundtrip over the wire, daemon batching on —
/// the hot path the sub-millisecond p50 target is about.
fn bench_cached_verdict(c: &mut Criterion) {
    let dir = tmp_dir("verdict");
    populate(&dir);
    let server = Server::start(
        &dir,
        ServeConfig {
            batch_window: Duration::from_micros(50),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let request = Request {
        cmd: "verdict".to_owned(),
        os: Some("kerla".to_owned()),
        app: Some("app-17".to_owned()),
        workload: Some("health".to_owned()),
        tier: Some("planned".to_owned()),
        ..Request::default()
    };

    let mut group = c.benchmark_group("serve-verdict");
    group.bench_function("cached-roundtrip", |b| {
        b.iter(|| {
            let response = client.request(&request).expect("verdict");
            assert!(response.ok);
            black_box(response.verdict)
        });
    });
    group.finish();
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// Cold daemon startup: open the database, compile the sharded index,
/// bind. `snapshot` serves the matrix namespace from the memory-mapped
/// binary index; `json-fallback` has no index directory and decodes
/// every per-cell JSON file.
fn bench_startup(c: &mut Criterion) {
    let dir = tmp_dir("startup");
    populate(&dir);
    // Materialise the binary snapshots (written on first bulk load).
    Database::open(&dir)
        .and_then(|db| db.load_matrix())
        .expect("materialise snapshot");
    assert!(dir.join("index").is_dir(), "snapshot index exists");

    let mut group = c.benchmark_group("serve-startup");
    group.sample_size(10);
    let start_once = |dir: &PathBuf| {
        let server = Server::start(
            dir,
            ServeConfig {
                // No watcher/batcher threads: startup cost only.
                batch_window: Duration::ZERO,
                watch_interval: Duration::ZERO,
                ..ServeConfig::default()
            },
        )
        .expect("start server");
        let cells = {
            let mut client = Client::connect(server.local_addr()).expect("connect");
            client.ping().expect("ping")
        };
        server.stop();
        cells
    };
    group.bench_function("snapshot", |b| {
        b.iter(|| black_box(start_once(&dir)));
    });

    let nosnap = tmp_dir("startup-nosnap");
    populate(&nosnap);
    std::fs::remove_dir_all(nosnap.join("index")).ok();
    group.bench_function("json-fallback", |b| {
        b.iter(|| {
            // The startup bulk load rewrites the snapshot; drop it so
            // every iteration pays the fallback path.
            std::fs::remove_dir_all(nosnap.join("index")).ok();
            black_box(start_once(&nosnap))
        });
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&nosnap).ok();
}

criterion_group!(benches, bench_cached_verdict, bench_startup);
criterion_main!(benches);
