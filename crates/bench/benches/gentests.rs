//! Criterion benches for the conformance-suite generation stage: the
//! cold pass (baselines + matrix + suite generation + self-validation
//! for the detailed fleet × all 11 OSes) vs the pure cache-hit pass
//! where every suite is already stored byte-identically — the datapoint
//! the `BENCH_gentests.json` trajectory tracks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use loupe_apps::{registry, Workload};
use loupe_db::Database;
use loupe_sweep::{sweep_gentests, GentestsConfig, MatrixConfig, SweepConfig};

fn tmp_db(tag: &str) -> Database {
    let dir =
        std::env::temp_dir().join(format!("loupe-bench-gentests-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    Database::open(dir).expect("open bench db")
}

fn all_os_cfg() -> GentestsConfig {
    GentestsConfig {
        matrix: MatrixConfig {
            sweep: SweepConfig {
                workloads: vec![Workload::HealthCheck],
                workers: 0,
                ..SweepConfig::default()
            },
            ..MatrixConfig::default()
        },
        check: false,
    }
}

fn bench_cold_gentests(c: &mut Criterion) {
    let mut group = c.benchmark_group("gentests-cold");
    group.sample_size(10);
    group.bench_function("detailed-12/all-11-os", |b| {
        b.iter(|| {
            let db = tmp_db("cold");
            let summary = sweep_gentests(&db, registry::detailed(), &all_os_cfg()).expect("sweep");
            assert!(summary.is_clean(), "suites agree with the matrix");
            let generated = summary.generated;
            std::fs::remove_dir_all(db.root()).ok();
            black_box(generated)
        });
    });
    group.finish();
}

fn bench_cached_gentests(c: &mut Criterion) {
    let db = tmp_db("cached");
    sweep_gentests(&db, registry::detailed(), &all_os_cfg()).expect("warm the cache");
    let mut group = c.benchmark_group("gentests-cached");
    group.sample_size(10);
    group.bench_function("detailed-12/all-11-os", |b| {
        b.iter(|| {
            let summary = sweep_gentests(&db, registry::detailed(), &all_os_cfg()).expect("sweep");
            assert_eq!(summary.generated, 0, "every suite already stored");
            black_box(summary.cached)
        });
    });
    group.finish();
    std::fs::remove_dir_all(db.root()).ok();
}

criterion_group!(benches, bench_cold_gentests, bench_cached_gentests);
criterion_main!(benches);
