//! Criterion benches for the static-analysis stage: whole-program graph
//! lowering, single-app analysis at each rung of the precision ladder,
//! the fleet-wide static sweep (cold, at several worker counts, and
//! pure cache hits) and the full static-vs-dynamic comparison over a
//! populated database — the Figs. 4–7 pipeline at 116-app scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use loupe_apps::{registry, ProgramGraph, Workload};
use loupe_db::Database;
use loupe_static::{analyze_graph, Level};
use loupe_sweep::{compare, sweep_static, Sweep, SweepConfig};

fn tmp_db(tag: &str) -> Database {
    let dir =
        std::env::temp_dir().join(format!("loupe-bench-statics-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    Database::open(dir).expect("open bench db")
}

fn bench_graph_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph-lowering");
    let nginx = registry::find("nginx").expect("nginx in registry");
    group.bench_function("nginx", |b| {
        b.iter(|| {
            let graph = ProgramGraph::lower(nginx.as_ref());
            black_box(graph.functions.len())
        });
    });
    group.bench_function("dataset-116", |b| {
        b.iter(|| {
            let total: usize = registry::dataset()
                .iter()
                .map(|app| ProgramGraph::lower(app.as_ref()).functions.len())
                .sum();
            black_box(total)
        });
    });
    group.finish();
}

fn bench_per_level_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze-nginx");
    let nginx = registry::find("nginx").expect("nginx in registry");
    let graph = ProgramGraph::lower(nginx.as_ref());
    for level in Level::ALL {
        group.bench_function(level.label(), |b| {
            b.iter(|| {
                let report = analyze_graph(&graph, level);
                black_box(report.syscalls.len())
            });
        });
    }
    group.finish();
}

fn bench_cold_static_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("static-sweep-cold");
    group.sample_size(10);
    for workers in [1usize, 4, 0] {
        let label = if workers == 0 {
            "auto".to_owned()
        } else {
            workers.to_string()
        };
        group.bench_function(format!("dataset-116/workers-{label}"), |b| {
            b.iter(|| {
                let db = tmp_db("cold");
                let summary =
                    sweep_static(&db, registry::dataset(), workers, false).expect("static sweep");
                assert_eq!(
                    summary.analyzed,
                    Level::ALL.len() * registry::dataset().len()
                );
                std::fs::remove_dir_all(db.root()).ok();
                black_box(summary.analyzed)
            });
        });
    }
    group.finish();
}

fn bench_cached_static_sweep(c: &mut Criterion) {
    let db = tmp_db("cached");
    sweep_static(&db, registry::dataset(), 0, false).expect("warm the cache");
    let mut group = c.benchmark_group("static-sweep-cached");
    group.sample_size(10);
    group.bench_function("dataset-116", |b| {
        b.iter(|| {
            let summary = sweep_static(&db, registry::dataset(), 0, false).expect("static sweep");
            assert_eq!(summary.analyzed, 0, "everything cached");
            black_box(summary.cached)
        });
    });
    group.finish();
    std::fs::remove_dir_all(db.root()).ok();
}

fn bench_full_comparison(c: &mut Criterion) {
    // One populated database: dynamic health-check measurements plus
    // all four static levels for the whole fleet.
    let db = tmp_db("compare");
    Sweep::new(SweepConfig {
        workloads: vec![Workload::HealthCheck],
        ..SweepConfig::default()
    })
    .run(&db, registry::dataset())
    .expect("dynamic sweep");
    sweep_static(&db, registry::dataset(), 0, false).expect("static sweep");

    let mut group = c.benchmark_group("static-vs-dynamic");
    group.sample_size(10);
    group.bench_function("compare/dataset-116", |b| {
        b.iter(|| {
            let comparisons = compare(&db).expect("compare");
            assert!(comparisons[0].invariants_hold());
            black_box(comparisons.len())
        });
    });
    group.finish();
    std::fs::remove_dir_all(db.root()).ok();
}

criterion_group!(
    benches,
    bench_graph_lowering,
    bench_per_level_analysis,
    bench_cold_static_sweep,
    bench_cached_static_sweep,
    bench_full_comparison
);
criterion_main!(benches);
