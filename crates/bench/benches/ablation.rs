//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * replica count (1 vs 3) — the reliability/runtime trade-off of §3.1;
//! * sub-feature granularity on vs off — the cost of §5.4's partial-
//!   implementation analysis;
//! * greedy plan ordering vs alphabetical — quality measured as the cost
//!   to support half the apps (printed once; criterion measures runtime).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use loupe_apps::{registry, Workload};
use loupe_bench::{analyze_apps, requirements};
use loupe_core::{AnalysisConfig, Engine};
use loupe_plan::savings::{curve_points, loupe_curve};
use loupe_plan::AppRequirement;

fn bench_replicas(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-replicas");
    group.sample_size(10);
    for replicas in [1u32, 3] {
        group.bench_function(format!("weborf-r{replicas}"), |b| {
            let app = registry::find("weborf").unwrap();
            let engine = Engine::new(AnalysisConfig {
                replicas,
                ..AnalysisConfig::fast()
            });
            b.iter(|| {
                black_box(
                    engine
                        .analyze(app.as_ref(), Workload::HealthCheck)
                        .unwrap()
                        .stats
                        .total_runs(),
                )
            });
        });
    }
    group.finish();
}

fn bench_subfeatures(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-granularity");
    group.sample_size(10);
    for (label, explore) in [("syscall-only", false), ("with-subfeatures", true)] {
        group.bench_function(label, |b| {
            let app = registry::find("redis").unwrap();
            let engine = Engine::new(AnalysisConfig {
                explore_sub_features: explore,
                explore_pseudo_files: explore,
                ..AnalysisConfig::fast()
            });
            b.iter(|| {
                black_box(
                    engine
                        .analyze(app.as_ref(), Workload::HealthCheck)
                        .unwrap()
                        .stats
                        .features_tested,
                )
            });
        });
    }
    group.finish();
}

fn bench_plan_ordering(c: &mut Criterion) {
    let apps: Vec<_> = registry::dataset().into_iter().take(24).collect();
    let reports = analyze_apps(apps, Workload::HealthCheck);
    let reqs = requirements(&reports);

    // Quality comparison, printed once alongside the runtime numbers.
    let greedy = loupe_curve(&reqs);
    let mut alpha = reqs.clone();
    alpha.sort_by(|a, b| a.app.cmp(&b.app));
    let refs: Vec<&AppRequirement> = alpha.iter().collect();
    let alphabetical = curve_points("alphabetical", &refs, |a| a.required.clone());
    let half = reqs.len() / 2;
    println!(
        "[ablation] cost to support {half} apps: greedy={:?} alphabetical={:?}",
        greedy.cost_to_support(half),
        alphabetical.cost_to_support(half)
    );

    c.bench_function("ablation-ordering/greedy-24", |b| {
        b.iter(|| black_box(loupe_curve(&reqs).points.len()));
    });
    c.bench_function("ablation-ordering/alphabetical-24", |b| {
        b.iter(|| {
            let refs: Vec<&AppRequirement> = alpha.iter().collect();
            black_box(
                curve_points("alphabetical", &refs, |a| a.required.clone())
                    .points
                    .len(),
            )
        });
    });
}

fn bench_transfer(c: &mut Criterion) {
    // §6 future work: knowledge transfer across applications. Hints from
    // three web servers cut the run count of a fourth app's analysis.
    let engine = Engine::new(AnalysisConfig::fast());
    let teachers: Vec<_> = ["nginx", "lighttpd", "weborf"]
        .iter()
        .map(|n| {
            let app = registry::find(n).unwrap();
            engine.analyze(app.as_ref(), Workload::Benchmark).unwrap()
        })
        .collect();
    let hints = loupe_core::transfer_hints(&teachers, 3);
    let mut group = c.benchmark_group("ablation-transfer");
    group.sample_size(10);
    group.bench_function("h2o-cold", |b| {
        let app = registry::find("h2o").unwrap();
        b.iter(|| {
            black_box(
                engine
                    .analyze(app.as_ref(), Workload::Benchmark)
                    .unwrap()
                    .stats
                    .total_runs(),
            )
        });
    });
    group.bench_function("h2o-with-hints", |b| {
        let app = registry::find("h2o").unwrap();
        b.iter(|| {
            black_box(
                engine
                    .analyze_with_hints(app.as_ref(), Workload::Benchmark, &hints)
                    .unwrap()
                    .stats
                    .total_runs(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_replicas,
    bench_subfeatures,
    bench_plan_ordering,
    bench_transfer
);
criterion_main!(benches);
