//! Criterion benches for the fleet × OS matrix sweep: the cold 11-OS
//! pass over the detailed fleet (baselines + ~2 restricted runs per
//! cell) vs the pure cache-hit pass — the datapoint the perf trajectory
//! of the matrix layer is tracked by.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use loupe_apps::{registry, Workload};
use loupe_db::Database;
use loupe_sweep::{sweep_matrix, MatrixConfig, SweepConfig};

fn tmp_db(tag: &str) -> Database {
    let dir = std::env::temp_dir().join(format!("loupe-bench-matrix-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    Database::open(dir).expect("open bench db")
}

fn all_os_cfg() -> MatrixConfig {
    MatrixConfig {
        sweep: SweepConfig {
            workloads: vec![Workload::HealthCheck],
            workers: 0,
            ..SweepConfig::default()
        },
        ..MatrixConfig::default()
    }
}

fn bench_cold_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix-cold");
    group.sample_size(10);
    group.bench_function("detailed-12/all-11-os", |b| {
        b.iter(|| {
            let db = tmp_db("cold");
            let summary = sweep_matrix(&db, registry::detailed(), &all_os_cfg()).expect("sweep");
            let cells = summary.matrix.as_ref().expect("matrix section").analyzed;
            std::fs::remove_dir_all(db.root()).ok();
            black_box(cells)
        });
    });
    group.finish();
}

fn bench_cached_matrix(c: &mut Criterion) {
    let db = tmp_db("cached");
    sweep_matrix(&db, registry::detailed(), &all_os_cfg()).expect("warm the cache");
    let mut group = c.benchmark_group("matrix-cached");
    group.sample_size(10);
    group.bench_function("detailed-12/all-11-os", |b| {
        b.iter(|| {
            let summary = sweep_matrix(&db, registry::detailed(), &all_os_cfg()).expect("sweep");
            let matrix = summary.matrix.as_ref().expect("matrix section");
            assert_eq!(matrix.analyzed, 0, "everything cached");
            black_box(matrix.cached)
        });
    });
    group.finish();
    std::fs::remove_dir_all(db.root()).ok();
}

criterion_group!(benches, bench_cold_matrix, bench_cached_matrix);
criterion_main!(benches);
