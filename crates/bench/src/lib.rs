//! Shared harness code for the experiment binaries (one per table/figure
//! of the paper) and the criterion benches.

use loupe_apps::{AppModel, Workload};
use loupe_core::{AnalysisConfig, AppReport, Engine};
use loupe_plan::AppRequirement;

/// The engine configuration experiments use: single replica (the
/// simulator is deterministic), syscall granularity.
pub fn experiment_config() -> AnalysisConfig {
    AnalysisConfig::fast()
}

/// Analyses `apps` under `workload` in parallel (one worker per CPU,
/// capped at 16).
pub fn analyze_apps(apps: Vec<Box<dyn AppModel>>, workload: Workload) -> Vec<AppReport> {
    analyze_apps_with(apps, workload, experiment_config())
}

/// Analyses `apps` with an explicit configuration.
pub fn analyze_apps_with(
    apps: Vec<Box<dyn AppModel>>,
    workload: Workload,
    cfg: AnalysisConfig,
) -> Vec<AppReport> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    let queue: crossbeam::queue::SegQueue<Box<dyn AppModel>> = crossbeam::queue::SegQueue::new();
    for app in apps {
        queue.push(app);
    }
    let results = crossbeam::queue::SegQueue::new();
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let engine = Engine::new(cfg.clone());
                while let Some(app) = queue.pop() {
                    match engine.analyze(app.as_ref(), workload) {
                        Ok(report) => results.push(report),
                        Err(e) => eprintln!("warning: skipping {}: {e}", app.name()),
                    }
                }
            });
        }
    })
    .expect("analysis worker panicked");
    let mut out = Vec::new();
    while let Some(r) = results.pop() {
        out.push(r);
    }
    out.sort_by(|a, b| a.app.cmp(&b.app));
    out
}

/// Planner requirements for a set of reports.
pub fn requirements(reports: &[AppReport]) -> Vec<AppRequirement> {
    reports.iter().map(AppRequirement::from_report).collect()
}

/// A deterministic "historical" (folder-creation) order for the Fig. 2
/// organic-development estimate: ordered by a name hash, standing in for
/// the OSv-apps git metadata.
pub fn historical_order(mut reqs: Vec<AppRequirement>) -> Vec<AppRequirement> {
    fn fnv(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
    reqs.sort_by_key(|r| fnv(&r.app));
    reqs
}

/// Renders a simple aligned two-column table.
pub fn print_kv_table(title: &str, rows: &[(String, String)]) {
    println!("== {title} ==");
    let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in rows {
        println!("{k:<w$}  {v}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_apps::registry;

    #[test]
    fn parallel_analysis_covers_all_apps() {
        let apps: Vec<Box<dyn AppModel>> = registry::detailed().into_iter().take(4).collect();
        let names: Vec<String> = apps.iter().map(|a| a.name().to_owned()).collect();
        let reports = analyze_apps(apps, Workload::HealthCheck);
        assert_eq!(reports.len(), 4);
        for n in names {
            assert!(reports.iter().any(|r| r.app == n), "{n} missing");
        }
    }

    #[test]
    fn historical_order_is_deterministic_and_differs_from_alpha() {
        let reports = analyze_apps(
            registry::detailed().into_iter().take(5).collect(),
            Workload::HealthCheck,
        );
        let reqs = requirements(&reports);
        let a = historical_order(reqs.clone());
        let b = historical_order(reqs.clone());
        let order_a: Vec<_> = a.iter().map(|r| r.app.clone()).collect();
        let order_b: Vec<_> = b.iter().map(|r| r.app.clone()).collect();
        assert_eq!(order_a, order_b);
        let mut alpha: Vec<_> = order_a.clone();
        alpha.sort();
        assert_ne!(order_a, alpha, "hash order should differ from alphabetical");
    }
}
