//! The paper artifact's supplementary material (ASPLOS24-supp.pdf):
//! full support plans for all 11 OSes over the complete 116-application
//! dataset. §4.1 reports the full plan sizes: 35 steps for Fuchsia, 32
//! for Unikraft, 79 for Kerla.
//!
//! Regenerate with `cargo run -p loupe-bench --bin plans_all`
//! (add an OS name as argument to print that plan in full).

use loupe_apps::{registry, Workload};
use loupe_bench::{analyze_apps, requirements};
use loupe_plan::{os, SupportPlan};

fn main() {
    let detail: Option<String> = std::env::args().nth(1);
    println!("# Support plans for 11 OSes × 116 applications (bench workloads)\n");
    let reports = analyze_apps(registry::dataset(), Workload::Benchmark);
    let reqs = requirements(&reports);
    println!("measured {} applications\n", reqs.len());

    println!(
        "{:<14} {:>9} {:>8} {:>6} {:>11} {:>10}",
        "OS", "supported", "initial", "steps", "implemented", "<=3/step"
    );
    let mut sizes = Vec::new();
    for spec in os::db() {
        let plan = SupportPlan::generate(&spec, &reqs);
        println!(
            "{:<14} {:>9} {:>8} {:>6} {:>11} {:>9.0}%",
            spec.name,
            spec.supported.len(),
            plan.initially_supported.len(),
            plan.steps.len(),
            plan.total_implemented(),
            plan.small_step_fraction(3) * 100.0
        );
        sizes.push((spec.name.clone(), spec.supported.len(), plan.steps.len()));
        if detail.as_deref() == Some(spec.name.as_str()) {
            println!("\n{}", plan.to_table());
        }
    }

    // Maturity ordering: more supported syscalls → fewer steps. Check the
    // paper's Fuchsia(35) < Kerla(79) relation on our extremes.
    let steps_of = |name: &str| sizes.iter().find(|(n, _, _)| n == name).unwrap().2;
    println!("\n# shape checks");
    println!(
        "unikraft {} steps <= fuchsia {} <= kerla {}",
        steps_of("unikraft"),
        steps_of("fuchsia"),
        steps_of("kerla")
    );
    assert!(steps_of("unikraft") <= steps_of("fuchsia"));
    assert!(steps_of("fuchsia") < steps_of("kerla"));
    assert!(steps_of("gvisor") <= steps_of("browsix"));
    println!("\nPaper shape: full plans grow as OS maturity shrinks");
    println!("(paper: Unikraft 32, Fuchsia 35, Kerla 79 steps).");
}
