//! Figure 8: stability of syscall usage over time — traced and
//! stub/fake-able counts for old (2005-2010) vs recent (2021) releases of
//! httpd, Nginx and Redis, all built against a modern glibc.
//!
//! Regenerate with `cargo run -p loupe-bench --bin fig8`.

use loupe_apps::{registry, Workload};
use loupe_core::{AnalysisConfig, Engine};

fn main() {
    println!("# Figure 8 — syscall usage across releases (bench workloads)\n");
    let engine = Engine::new(AnalysisConfig::fast());
    let pairs = [
        ("httpd (Apache)", "httpd-2.2", "httpd"),
        ("Nginx", "nginx-0.3.19", "nginx"),
        ("Redis", "redis-2.0", "redis"),
    ];
    println!("app,release,traced,required,stubbable,fakeable,any");
    for (label, old, new) in pairs {
        for (era, name) in [("old", old), ("new", new)] {
            let app = registry::find(name).expect("variant exists");
            let year = app.spec().year;
            let report = engine
                .analyze(app.as_ref(), Workload::Benchmark)
                .expect("baseline passes");
            println!(
                "{label},{era} ({year}),{},{},{},{},{}",
                report.traced().len(),
                report.required().len(),
                report.stubbable().len(),
                report.fakeable().len(),
                report.avoidable().len(),
            );
        }
    }
    println!("\nPaper shape: totals stay roughly flat across 15 years — support");
    println!("is a one-time effort (§5.5 insight).");
}
