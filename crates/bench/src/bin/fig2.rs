//! Figure 2: engineering-effort savings for OSv — apps supported vs
//! syscalls implemented under (1) a Loupe support plan, (2) the organic
//! historical order, (3) naive dynamic analysis without stubbing/faking.
//!
//! Regenerate with `cargo run -p loupe-bench --bin fig2`.

use loupe_apps::{registry, Workload};
use loupe_bench::{analyze_apps, historical_order, requirements};
use loupe_plan::savings::{loupe_curve, naive_curve, organic_curve};

fn main() {
    println!("# Figure 2 — OSv engineering-effort curves\n");

    // The 62 applications "supported by OSv": a deterministic subset of
    // the dataset (the paper samples the OSv-Apps repository).
    let apps: Vec<_> = registry::dataset().into_iter().take(62).collect();
    let n_apps = apps.len();
    let reports = analyze_apps(apps, Workload::Benchmark);
    let reqs = requirements(&reports);
    let historical = historical_order(reqs.clone());

    let loupe = loupe_curve(&reqs);
    let organic = organic_curve(&historical);
    let naive = naive_curve(&historical);

    println!("strategy,syscalls_implemented,apps_supported");
    for curve in [&loupe, &organic, &naive] {
        for p in &curve.points {
            println!(
                "{},{},{}",
                curve.strategy, p.syscalls_implemented, p.apps_supported
            );
        }
    }

    let half = n_apps / 2;
    println!("\n# cost to support half ({half}) of the applications:");
    for curve in [&loupe, &organic, &naive] {
        println!(
            "{:<8} {} syscalls",
            curve.strategy,
            curve.cost_to_support(half).expect("all curves reach half")
        );
    }
    println!("\nPaper shape: Loupe(37) < organic(92) < naive(142) for 31/62 apps;");
    println!("Loupe and organic share the same endpoint (same union of required sets).");
}
