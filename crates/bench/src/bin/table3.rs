//! Table 3: Nginx 0.3.19 system-call usage under glibc 2.3.2 (32-bit,
//! 2003) vs glibc 2.31 (64-bit, 2020). Arch-variant renames (mmap2,
//! fstat64, ...) are marked with `*` like the paper's italics.
//!
//! Regenerate with `cargo run -p loupe-bench --bin table3`.

use std::collections::BTreeSet;

use loupe_apps::libc::names_32bit;
use loupe_apps::{registry, Workload};
use loupe_apps::{Env, Exit};
use loupe_core::Interposed;
use loupe_core::{AnalysisConfig, Engine, Policy};
use loupe_kernel::LinuxSim;

fn traced_names(app_name: &str, map_32bit: bool) -> BTreeSet<String> {
    let app = registry::find(app_name).expect("nginx variant");
    let mut sim = LinuxSim::new();
    app.provision(&mut sim);
    let mut kernel = Interposed::new(sim, Policy::allow_all());
    {
        let mut env = Env::new(&mut kernel);
        let _ = app.run(&mut env, Workload::TestSuite);
        let _ = env.finish(Exit::Clean);
    }
    let (_, trace) = kernel.into_parts();
    let mut names = BTreeSet::new();
    for s in trace.syscall_set().iter() {
        if map_32bit {
            for n in names_32bit(s) {
                let star = if loupe_syscalls::i386::Sysno32::from_name(n)
                    .map(|x| x.is_arch_variant())
                    .unwrap_or(false)
                {
                    "*"
                } else {
                    ""
                };
                names.insert(format!("{n}{star}"));
            }
        } else {
            names.insert(s.name().to_owned());
        }
    }
    names
}

fn main() {
    println!("# Table 3 — Nginx 0.3.19 across libc generations\n");
    let old = traced_names("nginx-0.3.19-glibc2.3.2", true);
    let new = traced_names("nginx-0.3.19", false);

    println!("glibc 2.3.2 / 32-bit ({} system calls):", old.len());
    println!("  {}\n", old.iter().cloned().collect::<Vec<_>>().join(", "));
    println!("glibc 2.31 / 64-bit ({} system calls):", new.len());
    println!("  {}\n", new.iter().cloned().collect::<Vec<_>>().join(", "));

    let strip = |s: &String| s.trim_end_matches('*').to_owned();
    let old_stripped: BTreeSet<String> = old.iter().map(strip).collect();
    let only_new: Vec<_> = new.difference(&old_stripped).cloned().collect();
    println!(
        "new syscalls needed by the modern build ({}):",
        only_new.len()
    );
    println!("  {}", only_new.join(", "));
    println!("\n(`*` marks 32-bit arch variants, the paper's italics.)");
    println!("Paper shape: 48 vs 51 syscalls — nearly unchanged over 17 years;");
    println!("most drift is arch renames plus a handful of modern calls");
    println!("(openat, prlimit64, arch_prctl, set_tid_address, set_robust_list).");

    // Keep the headline invariant honest.
    let _ = Engine::new(AnalysisConfig::fast());
    assert!(
        (old.len() as i64 - new.len() as i64).abs() <= 8,
        "counts stay close"
    );
}
