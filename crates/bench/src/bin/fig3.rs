//! Figure 3: API importance, Loupe vs naive dynamic analysis, over the
//! full 116-application dataset.
//!
//! Regenerate with `cargo run -p loupe-bench --bin fig3`.

use loupe_apps::{registry, Workload};
use loupe_bench::analyze_apps;
use loupe_plan::importance::{api_importance, total_distinct};

fn main() {
    println!("# Figure 3 — API importance (116 apps, benchmark workloads)\n");
    let reports = analyze_apps(registry::dataset(), Workload::Benchmark);
    println!("analysed {} applications\n", reports.len());

    let traced_sets: Vec<_> = reports.iter().map(|r| r.traced()).collect();
    let required_sets: Vec<_> = reports.iter().map(|r| r.required()).collect();

    let naive = api_importance(&traced_sets);
    let loupe = api_importance(&required_sets);

    println!("method,rank,syscall,importance_pct");
    for p in &naive {
        println!(
            "naive,{},{},{:.1}",
            p.rank,
            p.sysno.name(),
            p.importance * 100.0
        );
    }
    for p in &loupe {
        println!(
            "loupe,{},{},{:.1}",
            p.rank,
            p.sysno.name(),
            p.importance * 100.0
        );
    }

    let naive_total = total_distinct(&traced_sets);
    let loupe_total = total_distinct(&required_sets);
    let naive_top25 = naive
        .iter()
        .take(25)
        .filter(|p| p.importance >= 0.5)
        .count();
    let loupe_top25 = loupe
        .iter()
        .take(25)
        .filter(|p| p.importance >= 0.8)
        .count();

    println!("\n# summary");
    println!("total syscalls to support 100% of apps: naive={naive_total}, loupe={loupe_total}");
    println!("top-25 naive syscalls in >=50% of apps: {naive_top25}/25");
    println!("top-25 loupe syscalls in >=80% of apps: {loupe_top25}/25");
    println!("\nPaper shape: Loupe total (148) < naive total (180); Loupe's curve");
    println!("is front-loaded (top syscalls required by more apps) and shorter.");
    assert!(
        loupe_total < naive_total,
        "Loupe must require fewer syscalls than naive dynamic analysis"
    );
}
