//! Table 2: performance and resource-usage impact of stubbing/faking for
//! Nginx (wrk), Redis (redis-benchmark) and iPerf3 — every syscall whose
//! stub or fake run moved a metric outside the 3% error margin.
//!
//! Regenerate with `cargo run -p loupe-bench --bin table2`.

use loupe_apps::{registry, Workload};
use loupe_core::{AnalysisConfig, Engine, Impact};

const EPSILON: f64 = 0.03;

fn fmt_delta(d: f64) -> String {
    if d.abs() <= EPSILON {
        "-".to_owned()
    } else {
        format!("{:+.0}%", d * 100.0)
    }
}

fn row(app: &str, sysno: &str, mode: &str, i: &Impact) {
    println!(
        "{:<8} {:<16} {:<5} perf {:>6}  fds {:>6}  mem {:>6}  {}",
        app,
        sysno,
        mode,
        fmt_delta(i.perf_delta),
        fmt_delta(i.fd_delta),
        fmt_delta(i.rss_delta),
        if i.success {
            "passes tests"
        } else {
            "BREAKS core functioning"
        },
    );
}

fn main() {
    println!("# Table 2 — stub/fake impact on performance and resources\n");
    let engine = Engine::new(AnalysisConfig::fast());
    for name in ["nginx", "redis", "iperf3"] {
        let app = registry::find(name).expect("Table 2 app");
        let report = engine
            .analyze(app.as_ref(), Workload::Benchmark)
            .expect("baseline passes");
        println!(
            "--- {} (baseline: {:.2} resp/kunit, peak {} fds, {} KiB) ---",
            name,
            report.baseline.throughput,
            report.baseline.peak_fds,
            report.baseline.peak_rss / 1024
        );
        let mut shown = 0;
        for (sysno, rec) in &report.impacts {
            if let Some(i) = rec.stub {
                if i.is_notable(EPSILON) && (i.success || sysno.name() == "futex") {
                    row(name, sysno.name(), "stub", &i);
                    shown += 1;
                }
            }
            if let Some(i) = rec.fake {
                if i.is_notable(EPSILON)
                    && (i.success || sysno.name() == "futex" || sysno.name() == "clone")
                {
                    row(name, sysno.name(), "fake", &i);
                    shown += 1;
                }
            }
        }
        if shown == 0 {
            println!("(no syscall moved any metric outside the error margin)");
        }
        println!();
    }
    println!("Paper shape (rows to recognise):");
    println!("  nginx: write stub -> perf UP (access logs skipped); brk -> mem up;");
    println!("         clone fake -> mem up (master runs the worker loop);");
    println!("         rt_sigsuspend stub/fake -> perf DOWN (busy-wait).");
    println!("  redis: close fake -> fds x8; munmap fake -> mem up; brk -> mem up;");
    println!("         rt_sigprocmask -> mem DOWN (no background-free thread);");
    println!("         futex fake -> perf collapse + fd growth, breaks core;");
    println!("         pipe2 -> fds down (persistence pipes not created).");
    println!("  iperf3: brk -> mem up; nothing else moves.");
}
