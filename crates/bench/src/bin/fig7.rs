//! Figure 7: for each syscall wrapper appearing in application sources,
//! the percentage of applications whose user code checks its return
//! value (the paper's manual-inspection ground truth, §5.2).
//!
//! Regenerate with `cargo run -p loupe-bench --bin fig7`.

use std::collections::BTreeMap;

use loupe_apps::registry;
use loupe_syscalls::Sysno;

fn main() {
    println!("# Figure 7 — apps checking syscall return values\n");
    let mut uses: BTreeMap<Sysno, (usize, usize)> = BTreeMap::new(); // (checked, total)
    for app in registry::dataset() {
        for (sysno, checked) in app.code().return_checks {
            let entry = uses.entry(sysno).or_insert((0, 0));
            entry.1 += 1;
            if checked {
                entry.0 += 1;
            }
        }
    }

    println!("syscall,nr,apps_using,checked_pct");
    let mut never_checked = Vec::new();
    let mut always_checked = 0usize;
    for (sysno, (checked, total)) in &uses {
        let pct = *checked as f64 * 100.0 / *total as f64;
        println!("{},{},{},{:.0}", sysno.name(), sysno.raw(), total, pct);
        if *checked == 0 {
            never_checked.push(sysno.name());
        }
        if checked == total {
            always_checked += 1;
        }
    }

    println!("\n# summary");
    println!("wrappers observed: {}", uses.len());
    println!("always checked: {always_checked}");
    println!(
        "never checked: {} ({})",
        never_checked.len(),
        never_checked.join(", ")
    );
    println!("\nPaper shape: the majority of wrappers are checked; a small set");
    println!("(alarm, getppid, getrusage, utime, ...) is never checked — and the");
    println!("ability to stub/fake does NOT correlate with the absence of checks.");
}
