//! Figure 5: which syscalls each analysis method reports, as the
//! percentage of the seven deep-dive applications (benchmark workloads)
//! that include each syscall — four panels: static binary, static source,
//! dynamic traced, Loupe required.
//!
//! Regenerate with `cargo run -p loupe-bench --bin fig5`.

use loupe_apps::{registry, Workload};
use loupe_core::{AnalysisConfig, Engine};
use loupe_static::{BinaryAnalyzer, SourceAnalyzer, StaticAnalyzer};
use loupe_syscalls::SysnoSet;

const APPS: &[&str] = &[
    "redis",
    "nginx",
    "memcached",
    "sqlite",
    "haproxy",
    "lighttpd",
    "weborf",
];

fn panel(title: &str, sets: &[SysnoSet]) {
    let points = loupe_plan::api_importance(sets);
    println!("## {title} — {} distinct syscalls", points.len());
    for p in &points {
        println!(
            "{:>3} {:<22} {:>5.1}%",
            p.sysno.raw(),
            p.sysno.name(),
            p.importance * 100.0
        );
    }
    println!();
}

fn main() {
    println!("# Figure 5 — syscalls identified per method (7 apps, bench)\n");
    let engine = Engine::new(AnalysisConfig::fast());
    let mut binary = Vec::new();
    let mut source = Vec::new();
    let mut traced = Vec::new();
    let mut required = Vec::new();
    for name in APPS {
        let app = registry::find(name).expect("deep-dive app");
        binary.push(BinaryAnalyzer::new().analyze(app.as_ref()).syscalls);
        source.push(SourceAnalyzer::new().analyze(app.as_ref()).syscalls);
        let report = engine
            .analyze(app.as_ref(), Workload::Benchmark)
            .expect("baseline passes");
        traced.push(report.traced());
        required.push(report.required());
    }
    panel("(a) static analysis, binary level", &binary);
    panel("(b) static analysis, source level", &source);
    panel("(c) dynamic analysis, traced", &traced);
    panel("(d) Loupe dynamic analysis, required", &required);
    println!("Paper shape: each panel is a strict shrinkage of the previous;");
    println!("the required panel concentrates on fundamental services (§5.2).");
}
