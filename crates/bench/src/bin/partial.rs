//! §5.4 — partial implementation of vectored system calls.
//!
//! The paper's findings to reproduce:
//! * `arch_prctl` is required by almost every app, but only **one** of its
//!   features (`ARCH_SET_FS`, TLS setup) is ever used;
//! * `prlimit64` uses only `RLIMIT_NOFILE`/`_STACK`/`_CORE`-class
//!   resources out of 16;
//! * `ioctl` under benchmark loads uses one or two features per app
//!   (`TCGETS`, `FIONBIO`, ...) — all stubbable;
//! * `fcntl` mixes a required feature (`F_SETFL`, non-blocking mode) with
//!   always-stubbable ones (`F_SETFD`, close-on-exec).
//!
//! Regenerate with `cargo run -p loupe-bench --bin partial`.

use loupe_apps::{registry, Workload};
use loupe_core::{AnalysisConfig, Engine};
use loupe_syscalls::Sysno;

const APPS: &[&str] = &[
    "redis",
    "nginx",
    "memcached",
    "haproxy",
    "lighttpd",
    "weborf",
    "h2o",
];

fn main() {
    println!("# §5.4 — sub-features of vectored syscalls (bench workloads)\n");
    let engine = Engine::new(AnalysisConfig {
        explore_sub_features: true,
        ..AnalysisConfig::fast()
    });

    println!("app,feature,invocations_class");
    let mut setfl_required = 0;
    let mut setfd_stubbable = 0;
    let mut arch_features_used = std::collections::BTreeSet::new();
    for name in APPS {
        let app = registry::find(name).expect("deep-dive app");
        let report = engine
            .analyze(app.as_ref(), Workload::Benchmark)
            .expect("baseline passes");
        for (key, class) in &report.sub_features {
            println!("{name},{key},{}", class.label());
            if key.sysno() == Sysno::arch_prctl {
                arch_features_used.insert(key.selector_name().unwrap_or("?"));
            }
            match key.selector_name() {
                Some("F_SETFL") if class.is_required() => setfl_required += 1,
                Some("F_SETFD") if class.stub_ok => setfd_stubbable += 1,
                _ => {}
            }
        }
    }

    println!("\n# summary");
    println!(
        "arch_prctl features used across {} apps: {:?} (of 6 defined)",
        APPS.len(),
        arch_features_used
    );
    println!("apps where fcntl(F_SETFL) is required: {setfl_required}");
    println!("apps where fcntl(F_SETFD) is stubbable: {setfd_stubbable}");
    println!("\nPaper shape: one arch_prctl feature (ARCH_SET_FS) suffices for");
    println!("every app; F_SETFL is required while F_SETFD always stubs; treating");
    println!("vectored syscalls as monolithic makes support look harder than it is.");
    assert_eq!(arch_features_used.len(), 1, "only ARCH_SET_FS is exercised");
}
