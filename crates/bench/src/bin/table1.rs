//! Table 1: step-by-step support plans for Unikraft, Fuchsia and Kerla
//! over the 15 popular cloud applications.
//!
//! Regenerate with `cargo run -p loupe-bench --bin table1`.

use loupe_apps::{registry, Workload};
use loupe_bench::{analyze_apps, requirements};
use loupe_plan::{os, SupportPlan};

fn main() {
    println!("# Table 1 — incremental support plans (benchmark workloads)\n");
    let reports = analyze_apps(registry::cloud_apps(), Workload::Benchmark);
    let reqs = requirements(&reports);
    println!("measured {} cloud applications\n", reqs.len());

    for os_name in ["unikraft", "fuchsia", "kerla"] {
        let spec = os::find(os_name).expect("curated OS spec");
        println!(
            "--- {} ({} syscalls supported) ---",
            spec.name,
            spec.supported.len()
        );
        let plan = SupportPlan::generate(&spec, &reqs);
        print!("{}", plan.to_table());
        println!(
            "steps: {}, total implemented: {}, steps implementing <=3 syscalls: {:.0}%\n",
            plan.steps.len(),
            plan.total_implemented(),
            plan.small_step_fraction(3) * 100.0
        );
    }

    println!("Paper shape: steps scale inversely with OS maturity");
    println!("(Unikraft: 3 steps, Fuchsia: 5, Kerla: 11 for the 15-app set),");
    println!(">80% of steps implement 1-3 syscalls.");
}
