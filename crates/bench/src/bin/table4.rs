//! Table 4: system-call usage of a "Hello, world!" program across glibc
//! and musl, dynamically and statically linked — invocation counts
//! included, exactly like the paper's table.
//!
//! Regenerate with `cargo run -p loupe-bench --bin table4`.

use loupe_apps::apps::Hello;
use loupe_apps::{AppModel, Env, Exit, Workload};
use loupe_core::{Interposed, Policy};
use loupe_kernel::LinuxSim;

fn main() {
    println!("# Table 4 — hello-world syscalls per libc build\n");
    for hello in Hello::table4_matrix() {
        let mut sim = LinuxSim::new();
        hello.provision(&mut sim);
        let mut kernel = Interposed::new(sim, Policy::allow_all());
        {
            let mut env = Env::new(&mut kernel);
            hello
                .run(&mut env, Workload::HealthCheck)
                .expect("hello runs");
            let _ = env.finish(Exit::Clean);
        }
        let (_, trace) = kernel.into_parts();
        let total: u64 = trace.syscalls.values().sum();
        println!(
            "--- {} — {} distinct syscalls, {} invocations ---",
            hello.name(),
            trace.syscalls.len(),
            total
        );
        let mut entries: Vec<_> = trace.syscalls.iter().collect();
        entries.sort_by_key(|(s, _)| s.raw());
        let line = entries
            .iter()
            .map(|(s, n)| format!("{} ({n}x)", s.name()))
            .collect::<Vec<_>>()
            .join(", ");
        println!("  {line}\n");
    }
    println!("Paper shape: glibc dynamic (28 invocations) ~2.5x musl dynamic (11);");
    println!("glibc static (11) ~1.8x musl static (6); glibc uses write/fstat,");
    println!("musl uses writev/ioctl/set_tid_address; static musl is the floor.");
}
