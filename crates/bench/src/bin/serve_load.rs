//! Load-test harness for the `loupe serve` daemon: thousands of
//! concurrent clients over a mixed query distribution against an
//! in-process server, reporting p50/p99 latency and throughput.
//!
//! ```text
//! serve_load [--db DIR]            # default: synthetic fleet-scale corpus
//!            [--clients N]         # concurrent connected clients (default 1000)
//!            [--requests N]        # requests per client (default 20)
//!            [--think-ms N]        # per-client pause between requests (default 400)
//!            [--sat-clients N]     # saturation-phase threads (default 32)
//!            [--batch-window-us N] # daemon coalescing window (default 50)
//!            [--check]             # exhaustive daemon-vs-database cross-check
//!            [--check-doc FILE]    # daemon summary vs rendered OS_MATRIX.md
//! ```
//!
//! Two measurement phases, the standard split for a latency target:
//!
//! 1. **Saturation** — a handful of zero-think closed-loop threads
//!    hammer the daemon to measure peak throughput. (Latency numbers
//!    under saturation only measure the queue, not the service:
//!    closed-loop p50 ≈ in-flight / throughput by Little's law.)
//! 2. **Latency** — `--clients` concurrent connections each issue
//!    requests with `--think-ms` pauses (desynchronised by a random
//!    initial jitter), and every roundtrip is timed. This is the
//!    "thousands of connected dashboards" shape the daemon exists
//!    for, and where the sub-millisecond p50 target applies.
//!
//! The last line on stdout is a one-object JSON summary (the numbers
//! `BENCH_serve.json` tracks). `--check` replays **every** stored
//! matrix cell at both tiers through the wire protocol and compares
//! against the database directly — the daemon must agree with its
//! source of truth on all of them. `--check-doc` parses the rendered
//! `OS_MATRIX.md` tables and compares each row's pass counts with the
//! daemon's `summary` answer.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use loupe_apps::{registry, Workload};
use loupe_db::Database;
use loupe_plan::{os, MatrixCell, Tier, TierOutcome};
use loupe_serve::{CellQuery, Client, Request, ServeConfig, Server};
use loupe_syscalls::{Sysno, SysnoSet};

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic xorshift64* — per-thread query sequencing without an
/// RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Synthetic fleet-scale corpus: every curated OS × the full dataset ×
/// two workloads, with deterministic verdict patterns. No measurement —
/// the daemon's serving path is what's under test, not the sweep.
fn populate_synthetic(dir: &Path) {
    let db = Database::open(dir).expect("open synthetic db");
    let oses: Vec<String> = os::db().into_iter().map(|s| s.name).collect();
    let apps: Vec<String> = registry::dataset()
        .iter()
        .map(|a| a.name().to_owned())
        .collect();
    for (i, os_name) in oses.iter().enumerate() {
        for (j, app) in apps.iter().enumerate() {
            for workload in [Workload::HealthCheck, Workload::Benchmark] {
                let vanilla = (i * 7 + j) % 3 == 0;
                let planned = vanilla || (i + j) % 2 == 0;
                let cell = MatrixCell {
                    os: os_name.clone(),
                    app: app.clone(),
                    workload,
                    linux_pass: true,
                    missing_required: if vanilla {
                        SysnoSet::new()
                    } else {
                        [Sysno::io_uring_setup].into_iter().collect()
                    },
                    vanilla: Some(TierOutcome {
                        pass: vanilla,
                        ..TierOutcome::default()
                    }),
                    planned: Some(TierOutcome {
                        pass: planned,
                        ..TierOutcome::default()
                    }),
                    missing_required_flags: Vec::new(),
                };
                db.save_matrix_cell_replacing(&cell).expect("seed cell");
            }
        }
    }
    db.flush().expect("flush synthetic db");
}

struct ThreadStats {
    /// Microsecond latency per single-verdict request.
    verdict_us: Vec<u64>,
    /// Microsecond latency per non-verdict request.
    other_us: Vec<u64>,
}

/// One client's request loop: mostly single verdicts (the hot cached
/// path), with batch/summary/missing lookups mixed in. A nonzero
/// `think` pauses between requests (open-loop-ish load); the initial
/// jitter desynchronises the fleet.
fn run_client(
    addr: std::net::SocketAddr,
    seed: u64,
    requests: usize,
    think: Duration,
    oses: &[String],
    apps: &[String],
) -> ThreadStats {
    let mut rng = Rng(seed | 1);
    let mut client = Client::connect(addr).expect("client connect");
    client.set_timeout(Duration::from_secs(60)).unwrap();
    let mut stats = ThreadStats {
        verdict_us: Vec::with_capacity(requests),
        other_us: Vec::new(),
    };
    let pick =
        |rng: &mut Rng, pool: &[String]| pool[(rng.next() % pool.len() as u64) as usize].clone();
    if !think.is_zero() {
        std::thread::sleep(Duration::from_millis(rng.next() % think.as_millis() as u64));
    }
    for _ in 0..requests {
        if !think.is_zero() {
            std::thread::sleep(think);
        }
        let roll = rng.next() % 100;
        let (request, is_verdict) = if roll < 80 {
            (
                Request {
                    cmd: "verdict".to_owned(),
                    os: Some(pick(&mut rng, oses)),
                    app: Some(pick(&mut rng, apps)),
                    workload: Some("health".to_owned()),
                    tier: Some(
                        if roll.is_multiple_of(2) {
                            "vanilla"
                        } else {
                            "planned"
                        }
                        .to_owned(),
                    ),
                    ..Request::default()
                },
                true,
            )
        } else if roll < 90 {
            let cells = (0..8)
                .map(|_| CellQuery {
                    os: pick(&mut rng, oses),
                    app: pick(&mut rng, apps),
                    workload: Some("health".to_owned()),
                    tier: Some("planned".to_owned()),
                })
                .collect();
            (
                Request {
                    cmd: "verdicts".to_owned(),
                    cells,
                    ..Request::default()
                },
                false,
            )
        } else if roll < 95 {
            (
                Request {
                    cmd: "summary".to_owned(),
                    ..Request::default()
                },
                false,
            )
        } else {
            (
                Request {
                    cmd: "missing".to_owned(),
                    os: Some(pick(&mut rng, oses)),
                    limit: Some(5),
                    ..Request::default()
                },
                false,
            )
        };
        let start = Instant::now();
        let response = client.request(&request).expect("request");
        let us = start.elapsed().as_micros() as u64;
        assert!(response.ok, "load query failed: {:?}", response.error);
        if is_verdict {
            stats.verdict_us.push(us);
        } else {
            stats.other_us.push(us);
        }
    }
    stats
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Replays every stored matrix cell at both tiers through the wire
/// protocol; any disagreement with the database is a hard failure.
fn cross_check(addr: std::net::SocketAddr, db: &Database) -> usize {
    let cells = db.load_matrix().expect("load matrix");
    let mut client = Client::connect(addr).expect("check connect");
    client.set_timeout(Duration::from_secs(60)).unwrap();
    let mut checked = 0;
    for cell in &cells {
        for tier in [Tier::Vanilla, Tier::Planned] {
            let expected = match tier {
                Tier::Vanilla => cell.passes(Tier::Vanilla),
                Tier::Planned => cell.planned_at_least(),
            };
            let response = client
                .request(&Request {
                    cmd: "verdict".to_owned(),
                    os: Some(cell.os.clone()),
                    app: Some(cell.app.clone()),
                    workload: Some(cell.workload.label().to_owned()),
                    tier: Some(tier.label().to_owned()),
                    ..Request::default()
                })
                .expect("check request");
            assert!(response.ok, "check query failed: {:?}", response.error);
            let verdict = response.verdict.expect("check verdict");
            assert!(verdict.known, "{}/{} should be measured", cell.os, cell.app);
            assert_eq!(
                verdict.pass,
                expected,
                "daemon disagrees with the database: {} x {} ({}, {} tier)",
                cell.os,
                cell.app,
                cell.workload,
                tier.label()
            );
            assert_eq!(verdict.linux_pass, cell.linux_pass);
            checked += 1;
        }
    }
    checked
}

/// Parses the `OS_MATRIX.md` summary tables and compares each row's
/// counts with the daemon's `summary` answer.
fn check_doc(addr: std::net::SocketAddr, doc: &Path) -> usize {
    let text = std::fs::read_to_string(doc).expect("read OS_MATRIX.md");
    let mut client = Client::connect(addr).expect("doc-check connect");
    let response = client
        .request(&Request {
            cmd: "summary".to_owned(),
            ..Request::default()
        })
        .expect("summary request");
    assert!(response.ok);
    let summary = response.summary;

    // Section headers name workloads by display name; daemon rows use
    // the short labels. Non-workload sections (e.g. "Per-OS failure
    // causes") also carry tables with [os] links — stop attributing
    // rows until the next workload header.
    let label_of = |section: &str| match section {
        s if s.starts_with("benchmark") => Some("bench"),
        s if s.starts_with("health-check") => Some("health"),
        s if s.starts_with("test-suite") => Some("suite"),
        _ => None,
    };
    let mut workload = None;
    let mut checked = 0;
    for line in text.lines() {
        if let Some(section) = line.strip_prefix("## ") {
            workload = label_of(section).map(str::to_owned);
            continue;
        }
        // Data rows: `| [os](#os) | syscalls | v/n (p%) | p/n (p%) | ...`
        let Some(wl) = &workload else { continue };
        let cols: Vec<&str> = line.split('|').map(str::trim).collect();
        if cols.len() < 7 || !cols[1].starts_with('[') {
            continue;
        }
        let os_name = cols[1]
            .trim_start_matches('[')
            .split(']')
            .next()
            .expect("os link");
        let syscalls: u64 = cols[2].parse().expect("syscall count");
        let parse_frac = |s: &str| -> (u64, u64) {
            let frac = s.split_whitespace().next().expect("fraction");
            let (num, den) = frac.split_once('/').expect("n/m");
            (num.parse().expect("num"), den.parse().expect("den"))
        };
        let (vanilla, apps) = parse_frac(cols[3]);
        let (planned, _) = parse_frac(cols[4]);
        let row = summary
            .iter()
            .find(|r| r.os == *os_name && r.workload == *wl)
            .unwrap_or_else(|| panic!("daemon has no summary row for {os_name}/{wl}"));
        assert_eq!(row.syscalls, syscalls, "{os_name}/{wl} syscalls");
        assert_eq!(row.apps, apps, "{os_name}/{wl} apps");
        assert_eq!(row.vanilla_pass, vanilla, "{os_name}/{wl} out-of-the-box");
        assert_eq!(row.planned_pass, planned, "{os_name}/{wl} with-plan");
        checked += 1;
    }
    assert!(checked > 0, "no matrix rows parsed from {}", doc.display());
    checked
}

/// Spawns `clients` small-stack client threads and joins their stats.
fn run_fleet(
    addr: std::net::SocketAddr,
    clients: usize,
    requests: usize,
    think: Duration,
    oses: &[String],
    apps: &[String],
) -> (ThreadStats, f64) {
    let wall = Instant::now();
    let mut handles = Vec::with_capacity(clients);
    for t in 0..clients {
        let oses = oses.to_vec();
        let apps = apps.to_vec();
        let handle = std::thread::Builder::new()
            .stack_size(64 * 1024)
            .spawn(move || run_client(addr, 0x9e37_79b9 + t as u64, requests, think, &oses, &apps))
            .expect("spawn client");
        handles.push(handle);
    }
    let mut all = ThreadStats {
        verdict_us: Vec::new(),
        other_us: Vec::new(),
    };
    for handle in handles {
        let stats = handle.join().expect("client thread");
        all.verdict_us.extend(stats.verdict_us);
        all.other_us.extend(stats.other_us);
    }
    all.verdict_us.sort_unstable();
    all.other_us.sort_unstable();
    (all, wall.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let clients: usize = parse_or(&args, "--clients", 1000);
    let requests: usize = parse_or(&args, "--requests", 20);
    let think_ms: u64 = parse_or(&args, "--think-ms", 400);
    let sat_clients: usize = parse_or(&args, "--sat-clients", 32);
    let batch_us: u64 = parse_or(&args, "--batch-window-us", 50);

    let (root, synthetic): (PathBuf, bool) = match flag_value(&args, "--db") {
        Some(dir) => (PathBuf::from(dir), false),
        None => {
            let dir = std::env::temp_dir().join(format!("loupe-serve-load-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            populate_synthetic(&dir);
            (dir, true)
        }
    };

    let build_start = Instant::now();
    let server = Server::start(
        &root,
        ServeConfig {
            threads: clients + 64,
            batch_window: Duration::from_micros(batch_us),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let startup_ms = build_start.elapsed().as_secs_f64() * 1e3;
    let addr = server.local_addr();

    let db = Database::open(&root).expect("open db");
    let cells = db.load_matrix().expect("load matrix");
    let mut oses: Vec<String> = cells.iter().map(|c| c.os.clone()).collect();
    let mut apps: Vec<String> = cells.iter().map(|c| c.app.clone()).collect();
    oses.sort();
    oses.dedup();
    apps.sort();
    apps.dedup();
    eprintln!(
        "corpus: {} cells ({} oses x {} apps); daemon up in {startup_ms:.1} ms at {addr}",
        cells.len(),
        oses.len(),
        apps.len()
    );

    if args.iter().any(|a| a == "--check") {
        let checked = cross_check(addr, &db);
        eprintln!("check: {checked} verdicts cross-checked against the database, 0 mismatches");
    }
    if let Some(doc) = flag_value(&args, "--check-doc") {
        let rows = check_doc(addr, Path::new(doc));
        eprintln!("check-doc: {rows} OS_MATRIX.md rows match the daemon summary");
    }

    // Phase 1: saturation — peak throughput from a few zero-think
    // closed-loop threads.
    let sat_requests = 400;
    eprintln!("saturation: {sat_clients} closed-loop clients x {sat_requests} requests...");
    let (sat, sat_wall) = run_fleet(
        addr,
        sat_clients,
        sat_requests,
        Duration::ZERO,
        &oses,
        &apps,
    );
    let sat_total = sat.verdict_us.len() + sat.other_us.len();
    let throughput = sat_total as f64 / sat_wall;
    eprintln!("saturation: {throughput:.0} req/s");

    // Phase 2: latency — the full connected-client fleet with think
    // time, where each roundtrip's latency is the service, not the
    // queue.
    let think = Duration::from_millis(think_ms);
    eprintln!(
        "latency: {clients} connected clients x {requests} requests, think {think_ms}ms \
         (batch window {batch_us}us)..."
    );
    let (lat, _) = run_fleet(addr, clients, requests, think, &oses, &apps);
    let total = lat.verdict_us.len() + lat.other_us.len();

    let p50 = percentile(&lat.verdict_us, 0.50);
    let summary = format!(
        "{{\"clients\": {clients}, \"requests\": {total}, \"think_ms\": {think_ms}, \
         \"verdict_p50_us\": {p50}, \"verdict_p99_us\": {}, \
         \"other_p50_us\": {}, \"other_p99_us\": {}, \
         \"saturation_rps\": {throughput:.0}, \"startup_ms\": {startup_ms:.1}, \
         \"synthetic\": {synthetic}}}",
        percentile(&lat.verdict_us, 0.99),
        percentile(&lat.other_us, 0.50),
        percentile(&lat.other_us, 0.99),
    );
    println!("{summary}");

    server.stop();
    if synthetic {
        std::fs::remove_dir_all(&root).ok();
    }
    // The tentpole target: cached verdict answers in under a
    // millisecond at the median with the full client fleet connected.
    if p50 >= 1000 {
        eprintln!("FAIL: verdict p50 {p50}us >= 1000us");
        std::process::exit(1);
    }
}
