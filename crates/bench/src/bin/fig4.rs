//! Figure 4: number of syscalls identified per analysis method — static
//! source, static binary, and dynamic (traced / stubbable / fakeable /
//! either / required) — for the seven deep-dive applications, under both
//! benchmark and test-suite workloads.
//!
//! Regenerate with `cargo run -p loupe-bench --bin fig4`.

use loupe_apps::{registry, Workload};
use loupe_core::{AnalysisConfig, Engine};
use loupe_static::{BinaryAnalyzer, SourceAnalyzer, StaticAnalyzer};

const APPS: &[&str] = &[
    "redis",
    "nginx",
    "memcached",
    "sqlite",
    "haproxy",
    "lighttpd",
    "weborf",
];

fn main() {
    println!("# Figure 4 — syscalls per analysis method (7 apps)\n");
    println!("app,workload,static_source,static_binary,dyn_traced,dyn_stubbable,dyn_fakeable,dyn_any,dyn_required");
    let engine = Engine::new(AnalysisConfig::fast());
    let src = SourceAnalyzer::new();
    let bin = BinaryAnalyzer::new();

    for name in APPS {
        let app = registry::find(name).expect("deep-dive app");
        let s = src.analyze(app.as_ref()).syscalls.len();
        let b = bin.analyze(app.as_ref()).syscalls.len();
        for workload in [Workload::Benchmark, Workload::TestSuite] {
            let report = engine
                .analyze(app.as_ref(), workload)
                .expect("baseline passes");
            let traced = report.traced().len();
            let required = report.required().len();
            let stub = report.stubbable().len();
            let fake = report.fakeable().len();
            let any = report.avoidable().len();
            println!("{name},{workload},{s},{b},{traced},{stub},{fake},{any},{required}");
            assert!(required <= traced && traced <= b, "{name} ordering");
        }
    }
    println!("\nPaper shape: static binary > static source > dyn traced > dyn required;");
    println!("required ~= 20 for benchmarks, 20-40 for suites; 46-60% of traced");
    println!("syscalls are stubbable/fakeable.");
}
