//! §3.3 — pseudo-file interposition: which `/proc`, `/dev` and `/sys`
//! files the applications touch, and which of those accesses can be
//! stubbed or faked. (The paper measures these but sets the results aside
//! for space; this binary regenerates the underlying data.)
//!
//! Regenerate with `cargo run -p loupe-bench --bin pseudofiles`.

use std::collections::BTreeMap;

use loupe_apps::{registry, Workload};
use loupe_core::{AnalysisConfig, Engine};

fn main() {
    println!("# §3.3 — pseudo-file usage (suite workloads, detailed apps)\n");
    let engine = Engine::new(AnalysisConfig {
        explore_pseudo_files: true,
        ..AnalysisConfig::fast()
    });

    let mut per_path: BTreeMap<String, (usize, usize)> = BTreeMap::new(); // (users, avoidable)
    println!("app,path,class");
    for app in registry::detailed() {
        let report = engine
            .analyze(app.as_ref(), Workload::TestSuite)
            .expect("baseline passes");
        for (path, class) in &report.pseudo_files {
            println!("{},{},{}", report.app, path, class.label());
            let entry = per_path.entry(path.clone()).or_insert((0, 0));
            entry.0 += 1;
            if class.is_avoidable() {
                entry.1 += 1;
            }
        }
    }

    println!("\n# per-path summary (users / avoidable)");
    for (path, (users, avoidable)) in &per_path {
        println!("{path}: {users} apps, avoidable for {avoidable}");
    }
    println!("\nPaper shape: a small set of special files (/dev/urandom,");
    println!("/proc/self/*, /proc/sys/*) covers the dataset; most accesses");
    println!("tolerate stubbing because applications carry fallbacks.");
}
