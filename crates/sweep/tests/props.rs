//! Property tests for the static-vs-dynamic comparison invariants:
//! whatever the per-app syscall sets look like, as long as the
//! structural containment dynamic ⊆ L3 ⊆ L2 ⊆ L1 ⊆ L0 holds, every
//! overestimation factor the pipeline computes is ≥ 1 and non-increasing
//! up the ladder, the per-app chain flag agrees, and importance vectors
//! — dynamic and static, both riding the one shared implementation —
//! come out sorted descending and NaN-free. A second family generates
//! random [`ProgramGraph`]s and checks the analyser itself: the ladder
//! is sound (dynamic ⊆ L3) and monotone, and every witness re-walks.

use std::collections::BTreeMap;
use std::path::PathBuf;

use loupe_apps::libc::LibcFlavor;
use loupe_apps::program::{CallEdge, Function, NumberOperand, ProgramGraph, SyscallSite};
use loupe_apps::Workload;
use loupe_core::{AppReport, BaselineStats, FeatureClass, LINUX_ENV};
use loupe_db::Database;
use loupe_plan::importance_fractions;
use loupe_static::{analyze_graph, api_importance, verify_witness, Level, StaticReport};
use loupe_syscalls::{Sysno, SysnoSet};
use proptest::prelude::*;

/// Dense x86-64 syscall range: random index sets overlap enough to
/// exercise sharing and ties.
fn pool() -> Vec<Sysno> {
    (0u32..330).filter_map(Sysno::from_raw).collect()
}

fn pick(idxs: &[usize]) -> SysnoSet {
    let pool = pool();
    idxs.iter().map(|i| pool[i % pool.len()]).collect()
}

/// Builds the nested (dynamic, [L3, L2, L1, L0]) sets from one seed
/// chunk: dynamic ⊆ L3 ⊆ L2 ⊆ L1 ⊆ L0 by construction.
fn nested_sets(chunk: &[usize]) -> (SysnoSet, [SysnoSet; 4]) {
    let fifth = (chunk.len() / 5).max(1);
    let at = |i: usize| (i * fifth).min(chunk.len());
    let dynamic = pick(&chunk[..at(1)]);
    let l3 = dynamic.union(&pick(&chunk[at(1)..at(2)]));
    let l2 = l3.union(&pick(&chunk[at(2)..at(3)]));
    let l1 = l2.union(&pick(&chunk[at(3)..at(4)]));
    let l0 = l1.union(&pick(&chunk[at(4)..]));
    (dynamic, [l3, l2, l1, l0])
}

/// Persists the four ladder reports for `app` (finest set first, as
/// produced by [`nested_sets`]).
fn save_ladder(db: &Database, app: &str, fine_first: &[SysnoSet; 4]) {
    for (i, &level) in Level::ALL.iter().enumerate() {
        db.save_static(&StaticReport {
            app: app.to_owned(),
            level,
            syscalls: fine_first[3 - i].clone(),
            witnesses: Vec::new(),
        })
        .unwrap();
    }
}

/// A synthetic dynamic report whose traced set is `dynamic` and whose
/// required set alternates (every other traced syscall is required, the
/// rest stubbable) — enough structure for plan generation to differ
/// between the dynamic and static requirement definitions.
fn synthetic_report(app: &str, dynamic: &SysnoSet) -> AppReport {
    let mut traced = BTreeMap::new();
    let mut classes = BTreeMap::new();
    for (i, s) in dynamic.iter().enumerate() {
        traced.insert(s, 1 + i as u64);
        classes.insert(
            s,
            FeatureClass {
                stub_ok: i % 2 == 1,
                fake_ok: false,
            },
        );
    }
    AppReport {
        app: app.to_owned(),
        version: "1".into(),
        env: LINUX_ENV.into(),
        workload: Workload::HealthCheck,
        traced,
        classes,
        fallbacks: SysnoSet::new(),
        rejections: BTreeMap::new(),
        fake_hits: BTreeMap::new(),
        first_rejection: None,
        impacts: BTreeMap::new(),
        sub_features: vec![],
        pseudo_files: BTreeMap::new(),
        conflicts: vec![],
        confirmed: true,
        baseline: BaselineStats::default(),
        stats: Default::default(),
    }
}

fn tmpdir(tag: &str, case: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "loupe-sweep-props-{tag}-{case}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

proptest! {
    #[test]
    fn factors_at_least_one_whenever_containment_holds(
        seed in proptest::collection::vec(0usize..4000, 15..75)
    ) {
        let chunks: Vec<&[usize]> = seed.chunks(15).collect();
        let dir = tmpdir("factors", seed.iter().sum::<usize>() % 7919);
        let db = Database::open(&dir).unwrap();
        for (i, chunk) in chunks.iter().enumerate() {
            let (dynamic, ladder) = nested_sets(chunk);
            let app = format!("prop-app-{i}");
            db.save(&synthetic_report(&app, &dynamic)).unwrap();
            save_ladder(&db, &app, &ladder);
        }

        let comparisons = loupe_sweep::compare(&db).unwrap();
        prop_assert_eq!(comparisons.len(), 1);
        let c = &comparisons[0];
        prop_assert_eq!(c.apps.len(), chunks.len());
        prop_assert!(c.invariants_hold());
        for a in &c.apps {
            prop_assert!(a.chain_ok, "{}: containment holds by construction", a.app);
            prop_assert!(a.chain_breaks.is_empty(), "{}", a.app);
            // ≥ 1 at the finest level, non-increasing up the ladder.
            prop_assert!(
                a.level(Level::L3).over_used >= 1.0,
                "{}: {}", a.app, a.level(Level::L3).over_used
            );
            for pair in a.levels.windows(2) {
                prop_assert!(
                    pair[0].over_used >= pair[1].over_used,
                    "{}: {} < {}", a.app, pair[0].level.label(), pair[1].level.label()
                );
            }
            for l in &a.levels {
                prop_assert!(l.over_required >= l.over_used, "{}", a.app);
                prop_assert!(l.over_used.is_finite() && l.over_required.is_finite(), "{}", a.app);
            }
        }
        for i in 0..4 {
            prop_assert!(c.mean_factor[i] >= 1.0 && c.mean_factor[i].is_finite());
            prop_assert!(c.median_factor[i] >= 1.0 && c.median_factor[i].is_finite());
            if i > 0 {
                prop_assert!(c.mean_factor[i - 1] >= c.mean_factor[i]);
            }
        }
        // Static plans can never implement fewer syscalls than the
        // dynamic plan: static requirements are supersets — and coarser
        // levels are supersets of finer ones.
        for d in &c.plan_deltas {
            prop_assert!(d.implemented(Level::L3) >= d.dynamic_implemented, "{}", d.os);
            for pair in Level::ALL.windows(2) {
                prop_assert!(
                    d.implemented(pair[0]) >= d.implemented(pair[1]),
                    "{}: {} < {}", d.os, pair[0].label(), pair[1].label()
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_containment_violation_is_flagged_not_hidden(
        seed in proptest::collection::vec(0usize..4000, 10..40)
    ) {
        // L3 deliberately misses part of the dynamic set: the
        // comparison must flag the app rather than report factors as if
        // all were well. The rest of the chain stays intact (the
        // crippled L3 is a subset of the dynamic set, which sits inside
        // every coarser level).
        let (dynamic, ladder) = nested_sets(&seed);
        prop_assume!(dynamic.len() >= 2);
        let crippled: SysnoSet = dynamic.iter().skip(1).collect();
        let dir = tmpdir("violation", seed.iter().sum::<usize>() % 7919);
        let db = Database::open(&dir).unwrap();
        db.save(&synthetic_report("broken", &dynamic)).unwrap();
        let broken = [crippled, ladder[1].clone(), ladder[2].clone(), ladder[3].clone()];
        save_ladder(&db, "broken", &broken);

        let comparisons = loupe_sweep::compare(&db).unwrap();
        let c = &comparisons[0];
        prop_assert!(!c.invariants_hold());
        prop_assert!(!c.apps[0].chain_ok);
        let (link, missing) = &c.apps[0].chain_breaks[0];
        prop_assert!(link.contains("l3"), "{link}");
        prop_assert_eq!(missing.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn importance_vectors_sorted_descending_and_nan_free(
        seed in proptest::collection::vec(0usize..4000, 3..60)
    ) {
        let sets: Vec<SysnoSet> = seed.chunks(5).map(pick).collect();
        let dynamic = importance_fractions(&sets);
        let static_reports: Vec<StaticReport> = sets
            .iter()
            .enumerate()
            .map(|(i, s)| StaticReport {
                app: format!("app-{i}"),
                level: Level::Binary,
                syscalls: s.clone(),
                witnesses: Vec::new(),
            })
            .collect();
        let statics = api_importance(&static_reports);

        // Both rankings ride the same shared implementation; identical
        // inputs must give identical output.
        prop_assert_eq!(&dynamic, &statics);
        for ranking in [&dynamic, &statics] {
            for w in ranking.windows(2) {
                prop_assert!(w[0].1 >= w[1].1, "sorted descending: {:?}", w);
                // Deterministic tie-break: ascending syscall number.
                if w[0].1 == w[1].1 {
                    prop_assert!(w[0].0 < w[1].0, "tie-break: {:?}", w);
                }
            }
            for &(s, f) in ranking.iter() {
                prop_assert!(f.is_finite() && !f.is_nan(), "{s}: {f}");
                prop_assert!((0.0..=1.0).contains(&f), "{s}: fraction {f}");
            }
        }
    }

    #[test]
    fn generated_graphs_keep_the_ladder_sound_and_witnessed(
        seeds in proptest::collection::vec(0u64..u64::MAX, 2..24)
    ) {
        // Assemble an arbitrary-but-valid graph: each function is
        // bit-sliced out of one u64 seed (syscall, site shape, flags,
        // signature class, callees), indices are wrapped to range, and
        // `validate()`'s rules are applied as fix-ups afterwards (an
        // indirect `actual` that is not a legal candidate becomes
        // `None`; direct edges from linked code only target linked
        // functions so the dynamic walk stays inside linked code).
        let n = seeds.len();
        let pool = pool();
        let mut functions: Vec<Function> = seeds
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let sysno = pool[(w & 0xFFFF) as usize % pool.len()];
                let sites = match (w >> 16) & 3 {
                    0 => vec![],
                    1 => vec![SyscallSite { number: NumberOperand::Const(sysno) }],
                    2 => vec![SyscallSite {
                        number: NumberOperand::Register { resolvable: Some(sysno) },
                    }],
                    _ => vec![SyscallSite {
                        number: NumberOperand::Register { resolvable: None },
                    }],
                };
                let taken = (w >> 18) & 1 == 1;
                let sig = ((w >> 19) % 14) as u8;
                let direct = (w >> 25) & 1 == 1;
                // The entry function must be source-linked and outside
                // error paths or nothing is dynamically reachable.
                let linked = (w >> 26) & 1 == 1 || i == 0;
                let error = (w >> 27) & 1 == 1 && i != 0;
                let calls = (0..((w >> 28) & 3) as usize)
                    .map(|k| {
                        let target = ((w >> (30 + 7 * k)) & 0x7F) as usize % n;
                        if direct {
                            CallEdge::Direct { target }
                        } else {
                            CallEdge::Indirect { sig, actual: Some(target) }
                        }
                    })
                    .collect();
                Function {
                    name: format!("f{i}"),
                    object: format!("obj{}.o", i % 3),
                    source_linked: linked,
                    address_taken: taken,
                    sig,
                    error_path: error,
                    calls,
                    sites,
                }
            })
            .collect();

        // Fix-ups to satisfy `validate()`: a direct edge from linked
        // code must stay in linked code (drop the edge otherwise), and
        // an indirect `actual` must be a legal dynamic target.
        let snapshot = functions.clone();
        for f in &mut functions {
            if f.source_linked {
                f.calls.retain(|e| match e {
                    CallEdge::Direct { target } => snapshot[*target].source_linked,
                    CallEdge::Indirect { .. } => true,
                });
            }
            for e in &mut f.calls {
                if let CallEdge::Indirect { sig, actual } = e {
                    if let Some(t) = actual {
                        let cand = &snapshot[*t];
                        if !(cand.address_taken
                            && cand.sig == *sig
                            && cand.source_linked
                            && !cand.error_path)
                        {
                            *actual = None;
                        }
                    }
                }
            }
        }

        let graph = ProgramGraph {
            app: "prop".into(),
            libc: LibcFlavor::MuslStatic,
            entry: 0,
            functions,
        };
        prop_assert_eq!(graph.validate(), Ok(()));

        // Soundness and monotonicity of the ladder, witnesses included.
        let reports: Vec<StaticReport> =
            Level::ALL.iter().map(|&l| analyze_graph(&graph, l)).collect();
        for pair in reports.windows(2) {
            prop_assert!(
                pair[1].syscalls.is_subset(&pair[0].syscalls),
                "{} ⊄ {}", pair[1].level.label(), pair[0].level.label()
            );
        }
        let dynamic = graph.dynamic_reachable();
        prop_assert!(
            dynamic.is_subset(&reports[3].syscalls),
            "dynamic ⊄ L3: {:?}",
            dynamic.difference(&reports[3].syscalls)
        );
        for r in &reports {
            prop_assert_eq!(r.witnesses.len(), r.syscalls.len());
            for w in &r.witnesses {
                prop_assert!(r.syscalls.contains(w.sysno));
                if let Err(e) = verify_witness(&graph, r.level, w) {
                    prop_assert!(false, "{} witness for {}: {e}", r.level.label(), w.sysno.name());
                }
            }
        }
    }
}

/// Deterministic anchor, not a sampled property: the containment
/// invariant holds for the *real* fleet — every registry app's
/// source view within its binary view, and the health-check workload's
/// dynamic trace within the source view (the engine-backed half for the
/// full 116-app dataset; heavier workloads are covered for the detailed
/// apps by `loupe-sweep`'s unit tests).
#[test]
fn real_fleet_respects_containment_on_health_checks() {
    use loupe_core::{AnalysisConfig, Engine};
    use loupe_static::{BinaryAnalyzer, SourceAnalyzer, StaticAnalyzer};

    let engine = Engine::new(AnalysisConfig::fast());
    let bin = BinaryAnalyzer::new();
    let src = SourceAnalyzer::new();
    for app in loupe_apps::registry::dataset() {
        let b = bin.analyze(app.as_ref());
        let s = src.analyze(app.as_ref());
        assert!(
            s.syscalls.is_subset(&b.syscalls),
            "{}: source ⊄ binary",
            app.name()
        );
        let report = engine
            .analyze(app.as_ref(), Workload::HealthCheck)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        let used = report.traced().union(&report.fallbacks);
        let missing = used.difference(&s.syscalls);
        assert!(
            missing.is_empty(),
            "{}: dynamic ⊄ source, source misses {missing}",
            app.name()
        );
    }
}
