//! Property tests for the static-vs-dynamic comparison invariants:
//! whatever the per-app syscall sets look like, as long as the
//! structural containment dynamic ⊆ source ⊆ binary holds, every
//! overestimation factor the pipeline computes is ≥ 1, the per-app
//! invariant flag agrees, and importance vectors — dynamic and static,
//! both riding the one shared implementation — come out sorted
//! descending and NaN-free.

use std::collections::BTreeMap;
use std::path::PathBuf;

use loupe_apps::Workload;
use loupe_core::{AppReport, BaselineStats, FeatureClass, LINUX_ENV};
use loupe_db::Database;
use loupe_plan::importance_fractions;
use loupe_static::{api_importance, Level, StaticReport};
use loupe_syscalls::{Sysno, SysnoSet};
use proptest::prelude::*;

/// Dense x86-64 syscall range: random index sets overlap enough to
/// exercise sharing and ties.
fn pool() -> Vec<Sysno> {
    (0u32..330).filter_map(Sysno::from_raw).collect()
}

fn pick(idxs: &[usize]) -> SysnoSet {
    let pool = pool();
    idxs.iter().map(|i| pool[i % pool.len()]).collect()
}

/// Builds nested (dynamic, source, binary) sets from one seed chunk:
/// dynamic ⊆ source ⊆ binary by construction.
fn nested_sets(chunk: &[usize]) -> (SysnoSet, SysnoSet, SysnoSet) {
    let third = (chunk.len() / 3).max(1);
    let dynamic = pick(&chunk[..third.min(chunk.len())]);
    let source = dynamic.union(&pick(
        &chunk[third.min(chunk.len())..(2 * third).min(chunk.len())],
    ));
    let binary = source.union(&pick(&chunk[(2 * third).min(chunk.len())..]));
    (dynamic, source, binary)
}

/// A synthetic dynamic report whose traced set is `dynamic` and whose
/// required set alternates (every other traced syscall is required, the
/// rest stubbable) — enough structure for plan generation to differ
/// between the dynamic and static requirement definitions.
fn synthetic_report(app: &str, dynamic: &SysnoSet) -> AppReport {
    let mut traced = BTreeMap::new();
    let mut classes = BTreeMap::new();
    for (i, s) in dynamic.iter().enumerate() {
        traced.insert(s, 1 + i as u64);
        classes.insert(
            s,
            FeatureClass {
                stub_ok: i % 2 == 1,
                fake_ok: false,
            },
        );
    }
    AppReport {
        app: app.to_owned(),
        version: "1".into(),
        env: LINUX_ENV.into(),
        workload: Workload::HealthCheck,
        traced,
        classes,
        fallbacks: SysnoSet::new(),
        rejections: BTreeMap::new(),
        fake_hits: BTreeMap::new(),
        first_rejection: None,
        impacts: BTreeMap::new(),
        sub_features: vec![],
        pseudo_files: BTreeMap::new(),
        conflicts: vec![],
        confirmed: true,
        baseline: BaselineStats::default(),
        stats: Default::default(),
    }
}

fn tmpdir(tag: &str, case: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "loupe-sweep-props-{tag}-{case}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

proptest! {
    #[test]
    fn factors_at_least_one_whenever_containment_holds(
        seed in proptest::collection::vec(0usize..4000, 12..60)
    ) {
        let chunks: Vec<&[usize]> = seed.chunks(12).collect();
        let dir = tmpdir("factors", seed.iter().sum::<usize>() % 7919);
        let db = Database::open(&dir).unwrap();
        for (i, chunk) in chunks.iter().enumerate() {
            let (dynamic, source, binary) = nested_sets(chunk);
            let app = format!("prop-app-{i}");
            db.save(&synthetic_report(&app, &dynamic)).unwrap();
            db.save_static(&StaticReport {
                app: app.clone(),
                level: Level::Source,
                syscalls: source,
            })
            .unwrap();
            db.save_static(&StaticReport {
                app,
                level: Level::Binary,
                syscalls: binary,
            })
            .unwrap();
        }

        let comparisons = loupe_sweep::compare(&db).unwrap();
        prop_assert_eq!(comparisons.len(), 1);
        let c = &comparisons[0];
        prop_assert_eq!(c.apps.len(), chunks.len());
        prop_assert!(c.invariants_hold());
        for a in &c.apps {
            prop_assert!(a.subset_ok, "{}: containment holds by construction", a.app);
            prop_assert!(a.source_over_used >= 1.0, "{}: {}", a.app, a.source_over_used);
            prop_assert!(a.binary_over_used >= a.source_over_used, "{}", a.app);
            prop_assert!(a.source_over_required >= a.source_over_used, "{}", a.app);
            prop_assert!(a.binary_over_required >= a.binary_over_used, "{}", a.app);
            for f in [
                a.source_over_used,
                a.binary_over_used,
                a.source_over_required,
                a.binary_over_required,
            ] {
                prop_assert!(f.is_finite(), "{}: factor {}", a.app, f);
            }
        }
        prop_assert!(c.mean_source_factor >= 1.0 && c.mean_source_factor.is_finite());
        prop_assert!(c.mean_binary_factor >= c.mean_source_factor);
        // Static plans can never implement fewer syscalls than the
        // dynamic plan: static requirements are supersets.
        for d in &c.plan_deltas {
            prop_assert!(d.source_implemented >= d.dynamic_implemented, "{}", d.os);
            prop_assert!(d.binary_implemented >= d.source_implemented, "{}", d.os);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_containment_violation_is_flagged_not_hidden(
        seed in proptest::collection::vec(0usize..4000, 6..24)
    ) {
        // Source deliberately misses part of the dynamic set: the
        // comparison must flag the app rather than report factors as if
        // all were well.
        let (dynamic, _, binary) = nested_sets(&seed);
        prop_assume!(dynamic.len() >= 2);
        let crippled: SysnoSet = dynamic.iter().skip(1).collect();
        let dir = tmpdir("violation", seed.iter().sum::<usize>() % 7919);
        let db = Database::open(&dir).unwrap();
        db.save(&synthetic_report("broken", &dynamic)).unwrap();
        db.save_static(&StaticReport {
            app: "broken".into(),
            level: Level::Source,
            syscalls: crippled,
        })
        .unwrap();
        db.save_static(&StaticReport {
            app: "broken".into(),
            level: Level::Binary,
            syscalls: binary,
        })
        .unwrap();

        let comparisons = loupe_sweep::compare(&db).unwrap();
        let c = &comparisons[0];
        prop_assert!(!c.invariants_hold());
        prop_assert!(!c.apps[0].subset_ok);
        prop_assert_eq!(c.apps[0].missing_from_source.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn importance_vectors_sorted_descending_and_nan_free(
        seed in proptest::collection::vec(0usize..4000, 3..60)
    ) {
        let sets: Vec<SysnoSet> = seed.chunks(5).map(pick).collect();
        let dynamic = importance_fractions(&sets);
        let static_reports: Vec<StaticReport> = sets
            .iter()
            .enumerate()
            .map(|(i, s)| StaticReport {
                app: format!("app-{i}"),
                level: Level::Binary,
                syscalls: s.clone(),
            })
            .collect();
        let statics = api_importance(&static_reports);

        // Both rankings ride the same shared implementation; identical
        // inputs must give identical output.
        prop_assert_eq!(&dynamic, &statics);
        for ranking in [&dynamic, &statics] {
            for w in ranking.windows(2) {
                prop_assert!(w[0].1 >= w[1].1, "sorted descending: {:?}", w);
                // Deterministic tie-break: ascending syscall number.
                if w[0].1 == w[1].1 {
                    prop_assert!(w[0].0 < w[1].0, "tie-break: {:?}", w);
                }
            }
            for &(s, f) in ranking.iter() {
                prop_assert!(f.is_finite() && !f.is_nan(), "{s}: {f}");
                prop_assert!((0.0..=1.0).contains(&f), "{s}: fraction {f}");
            }
        }
    }
}

/// Deterministic anchor, not a sampled property: the containment
/// invariant holds for the *real* fleet — every registry app's
/// source view within its binary view, and the health-check workload's
/// dynamic trace within the source view (the engine-backed half for the
/// full 116-app dataset; heavier workloads are covered for the detailed
/// apps by `loupe-sweep`'s unit tests).
#[test]
fn real_fleet_respects_containment_on_health_checks() {
    use loupe_core::{AnalysisConfig, Engine};
    use loupe_static::{BinaryAnalyzer, SourceAnalyzer, StaticAnalyzer};

    let engine = Engine::new(AnalysisConfig::fast());
    let bin = BinaryAnalyzer::new();
    let src = SourceAnalyzer::new();
    for app in loupe_apps::registry::dataset() {
        let b = bin.analyze(app.as_ref());
        let s = src.analyze(app.as_ref());
        assert!(
            s.syscalls.is_subset(&b.syscalls),
            "{}: source ⊄ binary",
            app.name()
        );
        let report = engine
            .analyze(app.as_ref(), Workload::HealthCheck)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        let used = report.traced().union(&report.fallbacks);
        let missing = used.difference(&s.syscalls);
        assert!(
            missing.is_empty(),
            "{}: dynamic ⊄ source, source misses {missing}",
            app.name()
        );
    }
}
