//! Integration and property tests for the fleet × OS empirical
//! compatibility matrix: golden-snapshot determinism of the generated
//! `OS_MATRIX.md`, the per-OS tier invariants, failure isolation for
//! poisoned app models, and the aggregation's invariant preservation
//! over arbitrary cell populations.

use std::collections::BTreeMap;
use std::path::PathBuf;

use loupe_apps::{registry, AppModel, Workload};
use loupe_core::AnalysisConfig;
use loupe_db::Database;
use loupe_plan::{os, MatrixCell, Tier, TierOutcome};
use loupe_sweep::{matrix, report, sweep_matrix, MatrixConfig, SweepConfig};
use proptest::prelude::*;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("loupe-matrix-int-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn all_os_cfg(workers: usize, jobs: usize) -> MatrixConfig {
    MatrixConfig {
        oses: os::db(),
        tier: None,
        sweep: SweepConfig {
            workloads: vec![Workload::HealthCheck],
            workers,
            analysis: AnalysisConfig {
                jobs,
                ..AnalysisConfig::fast()
            },
            ..SweepConfig::default()
        },
    }
}

fn rendered_matrix_doc(db: &Database) -> String {
    report::render(db)
        .unwrap()
        .files
        .into_iter()
        .find(|(p, _)| p.ends_with("OS_MATRIX.md"))
        .expect("OS_MATRIX.md rendered")
        .1
}

/// Golden-snapshot determinism: two `--all-os` matrix sweeps at
/// different worker and probe-scheduler (`--jobs`) counts must produce
/// byte-identical `OS_MATRIX.md` renderings — the drift-check pattern
/// extended to the new document.
#[test]
fn os_matrix_doc_is_byte_identical_across_scheduling() {
    let fleet = || -> Vec<_> { registry::detailed().into_iter().take(5).collect() };
    let dir_a = tmpdir("golden-a");
    let dir_b = tmpdir("golden-b");
    let db_a = Database::open(&dir_a).unwrap();
    let db_b = Database::open(&dir_b).unwrap();

    sweep_matrix(&db_a, fleet(), &all_os_cfg(1, 1)).unwrap();
    sweep_matrix(&db_b, fleet(), &all_os_cfg(6, 4)).unwrap();

    let doc_a = rendered_matrix_doc(&db_a);
    let doc_b = rendered_matrix_doc(&db_b);
    assert_eq!(doc_a, doc_b, "scheduling must never show in the matrix");
    assert!(doc_a.contains("## health-check workload"));
    for spec in os::db() {
        assert!(
            doc_a.contains(&format!("### {}", spec.name)),
            "{}",
            spec.name
        );
    }
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Every per-OS row honours the tier ordering on the real fleet: works
/// with plan ≥ works out of the box, and nothing exceeds the full-Linux
/// reference — the acceptance invariant of the matrix.
#[test]
fn per_os_rates_are_tier_monotone_on_the_real_fleet() {
    let dir = tmpdir("tiers");
    let db = Database::open(&dir).unwrap();
    let fleet: Vec<_> = registry::detailed().into_iter().collect();
    let summary = sweep_matrix(&db, fleet, &all_os_cfg(0, 1)).unwrap();
    let stats = summary.matrix.unwrap().stats;
    assert_eq!(stats.len(), os::db().len());
    for row in &stats {
        assert!(
            row.vanilla_pass <= row.planned_pass,
            "{}: planned ({}) regressed below vanilla ({})",
            row.os,
            row.planned_pass,
            row.vanilla_pass
        );
        assert!(row.planned_pass <= row.linux_pass);
    }
    // The paper's point made empirical: somewhere in the fleet, cheap
    // stub/fake remediation unlocks apps no vanilla kernel runs.
    assert!(
        stats.iter().any(|r| r.plan_gain() > 0),
        "the plan tier must gain something somewhere: {stats:?}"
    );
    // And every stored cell honours its own invariants.
    for cell in db.load_matrix().unwrap() {
        assert!(cell.invariants_hold(), "{}/{}", cell.os, cell.app);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// An app model that fails its workload even on full Linux.
struct BrokenApp;

impl AppModel for BrokenApp {
    fn name(&self) -> &str {
        "broken-on-linux"
    }

    fn spec(&self) -> loupe_apps::AppSpec {
        loupe_apps::AppSpec {
            name: "broken-on-linux".into(),
            version: "0".into(),
            year: 2024,
            port: None,
            kind: loupe_apps::AppKind::Utility,
            libc: loupe_apps::libc::LibcFlavor::MuslStatic,
        }
    }

    fn run(
        &self,
        _env: &mut loupe_apps::Env<'_>,
        _workload: Workload,
    ) -> Result<(), loupe_apps::Exit> {
        Err(loupe_apps::Exit::Crash("always broken".into()))
    }

    fn code(&self) -> loupe_apps::AppCode {
        loupe_apps::AppCode::new()
    }
}

/// An app model whose `run` panics — PR 4's panic-isolation fixture.
struct PanickingApp;

impl AppModel for PanickingApp {
    fn name(&self) -> &str {
        "panicking-app"
    }

    fn spec(&self) -> loupe_apps::AppSpec {
        loupe_apps::AppSpec {
            name: "panicking-app".into(),
            version: "0".into(),
            year: 2024,
            port: None,
            kind: loupe_apps::AppKind::Utility,
            libc: loupe_apps::libc::LibcFlavor::MuslStatic,
        }
    }

    fn run(
        &self,
        _env: &mut loupe_apps::Env<'_>,
        _workload: Workload,
    ) -> Result<(), loupe_apps::Exit> {
        panic!("deliberate model bug");
    }

    fn code(&self) -> loupe_apps::AppCode {
        loupe_apps::AppCode::new()
    }
}

/// A poisoned app model becomes a per-app `SweepFailure` naming the app
/// while the rest of the matrix completes — and an app that fails on
/// full Linux never passes (or even enters) a restricted tier.
#[test]
fn poisoned_and_broken_models_fail_alone_not_the_matrix() {
    let dir = tmpdir("poisoned");
    let db = Database::open(&dir).unwrap();
    let mut fleet: Vec<Box<dyn AppModel>> = vec![Box::new(PanickingApp), Box::new(BrokenApp)];
    fleet.extend(registry::detailed().into_iter().take(3));

    let cfg = MatrixConfig {
        oses: vec![os::find("kerla").unwrap(), os::find("gvisor").unwrap()],
        ..all_os_cfg(2, 1)
    };
    let summary = sweep_matrix(&db, fleet, &cfg).unwrap();
    assert_eq!(summary.analyzed, 3, "healthy apps still measured");
    assert_eq!(summary.failures.len(), 2);
    assert!(summary
        .failures
        .iter()
        .any(|f| f.app == "panicking-app" && f.error.contains("deliberate model bug")));
    assert!(summary.failures.iter().any(|f| f.app == "broken-on-linux"));

    let matrix_section = summary.matrix.unwrap();
    assert_eq!(
        matrix_section.analyzed,
        2 * 3,
        "matrix covers exactly the healthy apps"
    );
    for cell in db.load_matrix().unwrap() {
        assert_ne!(cell.app, "panicking-app");
        assert_ne!(cell.app, "broken-on-linux");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Builds a matrix cell the way `measure_cell` composes verdicts: tier
/// passes are gated on the Linux reference, and a vanilla pass is
/// inherited by the planned tier (no remediation needed).
fn synthetic_cell(
    os_idx: usize,
    app: usize,
    linux_pass: bool,
    vanilla_raw: bool,
    planned_raw: bool,
) -> MatrixCell {
    let oses = ["alpha", "beta", "gamma"];
    let vanilla_pass = linux_pass && vanilla_raw;
    let planned_pass = vanilla_pass || (linux_pass && planned_raw);
    MatrixCell {
        os: oses[os_idx % oses.len()].to_owned(),
        app: format!("app-{app}"),
        workload: Workload::HealthCheck,
        linux_pass,
        missing_required: loupe_syscalls::SysnoSet::new(),
        vanilla: Some(TierOutcome {
            pass: vanilla_pass,
            ..TierOutcome::default()
        }),
        planned: Some(TierOutcome {
            pass: planned_pass,
            ..TierOutcome::default()
        }),
        missing_required_flags: Vec::new(),
    }
}

proptest! {
    /// Whatever the cell population looks like, as long as each cell was
    /// composed the way measurement composes tiers, aggregation reports
    /// planned ≥ vanilla and linux ≥ planned for every (os, workload)
    /// row, and apps broken on Linux are never credited to any tier.
    #[test]
    fn aggregation_preserves_tier_invariants(
        seed in proptest::collection::vec(0usize..64, 3..40)
    ) {
        let cells: Vec<MatrixCell> = seed
            .iter()
            .enumerate()
            .map(|(i, &bits)| {
                synthetic_cell(bits % 3, i, bits & 4 != 0, bits & 8 != 0, bits & 16 != 0)
            })
            .collect();
        for cell in &cells {
            prop_assert!(cell.invariants_hold(), "{cell:?}");
        }
        let sizes: BTreeMap<String, usize> =
            [("alpha", 10), ("beta", 20), ("gamma", 30)]
                .into_iter()
                .map(|(n, s)| (n.to_owned(), s))
                .collect();
        let stats = matrix::aggregate(&cells, &sizes);
        let measured: usize = stats.iter().map(|r| r.apps).sum();
        prop_assert_eq!(measured, cells.len(), "every cell lands in one row");
        for row in &stats {
            prop_assert!(row.vanilla_pass <= row.planned_pass, "{row:?}");
            prop_assert!(row.planned_pass <= row.linux_pass, "{row:?}");
            prop_assert!(row.linux_pass <= row.apps, "{row:?}");
            prop_assert!(row.vanilla_rate() <= row.planned_rate());
            prop_assert_eq!(row.plan_gain(), row.planned_pass - row.vanilla_pass);
        }
        // Tier::ALL covers exactly the two remediation tiers.
        prop_assert_eq!(Tier::ALL.len(), 2);
    }
}
