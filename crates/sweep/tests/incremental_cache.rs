//! End-to-end properties of the content-addressed incremental sweep
//! engine:
//!
//! 1. **Scoped invalidation** — mutating one OS profile invalidates
//!    exactly that OS's matrix and conformance cells. Every other
//!    cell is served from cache and its recorded output fingerprint is
//!    bit-for-bit unchanged, which proves the stored artifact itself
//!    was not rewritten.
//! 2. **Determinism** — the rendered OS matrix and conformance docs
//!    are byte-identical across worker counts (1, 2, 8) and across
//!    cold-vs-warm runs, so caching and work-stealing never leak into
//!    the generated documentation.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use loupe_apps::{registry, Workload};
use loupe_core::Fingerprint;
use loupe_db::{ns, Database};
use loupe_plan::os;
use loupe_sweep::{report, sweep_gentests, GentestsConfig, MatrixConfig, SweepConfig};
use loupe_syscalls::{Sysno, SysnoSet};
use proptest::prelude::*;

fn tmpdir(tag: &str, case: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "loupe-incremental-{tag}-{case}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn cfg(oses: Vec<loupe_plan::OsSpec>, workers: usize) -> GentestsConfig {
    GentestsConfig {
        matrix: MatrixConfig {
            oses,
            tier: None,
            sweep: SweepConfig {
                workloads: vec![Workload::HealthCheck],
                workers,
                ..SweepConfig::default()
            },
        },
        check: false,
    }
}

fn fleet() -> Vec<Box<dyn loupe_apps::AppModel>> {
    registry::detailed().into_iter().take(2).collect()
}

fn oses() -> Vec<loupe_plan::OsSpec> {
    vec![
        os::find("kerla").unwrap(),
        os::find("gvisor").unwrap(),
        os::find("fuchsia").unwrap(),
    ]
}

/// A database swept cold exactly once; property cases copy it instead
/// of re-running the engine 64 times.
fn master_db() -> &'static PathBuf {
    static MASTER: OnceLock<PathBuf> = OnceLock::new();
    MASTER.get_or_init(|| {
        let dir = tmpdir("master", 0);
        let db = Database::open(&dir).unwrap();
        let cold = sweep_gentests(&db, fleet(), &cfg(oses(), 2)).unwrap();
        assert!(cold.is_clean(), "{:?}", cold.disagreements);
        db.flush().unwrap();
        dir
    })
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Every (matrix, suite) output fingerprint the manifest records for
/// the given OS/app/workload grid.
fn recorded_outputs(
    db: &Database,
    oses: &[loupe_plan::OsSpec],
    apps: &[String],
) -> BTreeMap<String, Fingerprint> {
    let mut out = BTreeMap::new();
    for spec in oses {
        for app in apps {
            for (namespace, key) in [
                (
                    ns::MATRIX,
                    loupe_db::matrix_key(&spec.name, app, Workload::HealthCheck),
                ),
                (
                    ns::SUITES,
                    loupe_db::suite_key(&spec.name, app, Workload::HealthCheck),
                ),
            ] {
                let fp = db
                    .recorded_output(namespace, &key)
                    .unwrap_or_else(|| panic!("{namespace}/{key} has no recorded output"));
                out.insert(format!("{namespace}/{key}"), fp);
            }
        }
    }
    out
}

proptest! {
    /// Toggling one syscall in one curated OS profile re-derives
    /// exactly that OS's matrix and suite cells on the next sweep;
    /// every other cell is a cache hit whose recorded output
    /// fingerprint is unchanged.
    #[test]
    fn profile_edit_invalidates_exactly_that_os(
        os_idx in 0usize..3,
        sysno_raw in 0u32..330,
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        prop_assume!(Sysno::from_raw(sysno_raw).is_some());
        let sysno = Sysno::from_raw(sysno_raw).unwrap();
        let oses = oses();
        let app_names: Vec<String> = fleet().iter().map(|a| a.name().to_owned()).collect();
        let (n_oses, n_apps) = (oses.len() as u64, app_names.len() as u64);
        let dir = tmpdir("invalidate", CASE.fetch_add(1, Ordering::Relaxed));
        copy_dir(master_db(), &dir);

        let before = {
            let db = Database::open(&dir).unwrap();
            recorded_outputs(&db, &oses, &app_names)
        };

        // Mutate exactly one profile: toggle one syscall in its
        // supported set.
        let mut mutated = oses.clone();
        let single: SysnoSet = [sysno].into_iter().collect();
        let supported = &mutated[os_idx].supported;
        mutated[os_idx].supported = if supported.contains(sysno) {
            supported.difference(&single)
        } else {
            supported.union(&single)
        };
        let edited_os = mutated[os_idx].name.clone();

        // Fresh handle so session counters cover only the re-sweep.
        let db = Database::open(&dir).unwrap();
        let warm = sweep_gentests(&db, fleet(), &cfg(mutated, 2)).unwrap();
        prop_assert!(warm.is_clean(), "{:?}", warm.disagreements);
        let stats = db.session_cache_stats();

        // Baselines untouched: pure hits.
        let base = stats.namespaces[ns::BASELINES];
        prop_assert_eq!((base.hits, base.misses, base.stale), (n_apps, 0, 0));
        // Matrix: only the edited OS's cells re-measured, as stale.
        let matrix = stats.namespaces[ns::MATRIX];
        prop_assert_eq!(
            (matrix.hits, matrix.misses, matrix.stale),
            ((n_oses - 1) * n_apps, 0, n_apps)
        );
        // Suites: same scoping (the OS fingerprint is an input).
        let suites = stats.namespaces[ns::SUITES];
        prop_assert_eq!(
            (suites.hits, suites.misses, suites.stale),
            ((n_oses - 1) * n_apps, 0, n_apps)
        );

        // The other OSes' artifacts are provably untouched: their
        // recorded output fingerprints are identical.
        let after = recorded_outputs(&db, &oses, &app_names);
        for (key, fp) in &before {
            // Both matrix (os/app/wl) and suite (os/wl/app) keys lead
            // with the OS name.
            let (_, rest) = key.split_once('/').unwrap();
            let os_of_key = rest.split('/').next().unwrap();
            if os_of_key == edited_os {
                continue;
            }
            prop_assert_eq!(
                after.get(key),
                Some(fp),
                "{} changed despite belonging to an unedited OS",
                key
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The rendered docs are byte-identical across worker counts and
/// cold-vs-warm sweeps: scheduling and caching are invisible in the
/// output.
#[test]
fn rendered_docs_identical_across_workers_and_cache_state() {
    let mut renders: Vec<(String, String)> = Vec::new();
    for workers in [1usize, 2, 8] {
        let dir = tmpdir("determinism", workers);
        let cold_render = {
            let db = Database::open(&dir).unwrap();
            let cold = sweep_gentests(&db, fleet(), &cfg(os::db(), workers)).unwrap();
            assert!(cold.is_clean(), "{:?}", cold.disagreements);
            assert_eq!(cold.cached, 0, "cold run starts empty");
            (
                report::render_os_matrix(&db.load_matrix().unwrap()),
                report::render_conformance(&db.load_suites().unwrap()),
            )
        };
        // Warm run through a fresh handle: everything served from the
        // manifest + binary snapshot path.
        let db = Database::open(&dir).unwrap();
        let warm = sweep_gentests(&db, fleet(), &cfg(os::db(), workers)).unwrap();
        assert_eq!(warm.generated, 0, "warm run regenerates nothing");
        let warm_render = (
            report::render_os_matrix(&db.load_matrix().unwrap()),
            report::render_conformance(&db.load_suites().unwrap()),
        );
        assert_eq!(cold_render, warm_render, "cold vs warm render drifted");
        renders.push(warm_render);
        std::fs::remove_dir_all(&dir).ok();
    }
    let (m1, c1) = &renders[0];
    for (m, c) in &renders[1..] {
        assert_eq!(m1, m, "OS_MATRIX.md differs across worker counts");
        assert_eq!(c1, c, "CONFORMANCE.md differs across worker counts");
    }
}
