//! The fleet × OS empirical compatibility matrix (§5 at production
//! scale): sweep every application × workload across every curated OS
//! kernel profile, under remediation tiers.
//!
//! `plan --os X` answers the paper's headline question — "how much of
//! real-world software does each compatibility layer actually run, and
//! how much cheaper is stub/fake-based support than full
//! implementation?" — *analytically*, from Linux measurements. This
//! module answers it *empirically*: for each OS in
//! [`loupe_plan::os::db`], each workload and each app, the workload is
//! executed on a restricted kernel exposing
//!
//! * **vanilla** — only the syscalls the OS implements today, and
//! * **planned** — vanilla plus the support plan's stub/fake guidance
//!   for the app (no new implementations — the cheap tier),
//!
//! with the stored full-Linux baseline as the reference tier. Cells
//! persist under the database's `env/<os>/matrix/` namespace with
//! skip-if-cached semantics, riding the same bounded worker pool as the
//! dynamic and static sweeps, and aggregate into per-OS "works out of
//! the box" / "works with plan" rates plus per-app failure causes (the
//! first rejected syscall, straight from the restricted kernel's
//! boundary counters).

use std::collections::BTreeMap;

use loupe_apps::{AppModel, Workload};
use loupe_core::{fingerprint_of, Fingerprint, TestScript};
use loupe_db::{ns, Database, DbError};
use loupe_plan::{measure_cell, os, AppRequirement, MatrixCell, OsSpec, Tier};
use loupe_syscalls::Sysno;

use crate::{pool, Sweep, SweepConfig, SweepFailure, SweepSummary};

/// Configuration of a matrix sweep.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// OS profiles to measure; defaults to the 11 curated specs of §4.1.
    pub oses: Vec<OsSpec>,
    /// Restricts the measurement to one tier: `Some(Vanilla)` skips the
    /// planned runs; `Some(Planned)` and `None` measure both (the
    /// planned tier needs the vanilla verdict — an app passing vanilla
    /// needs no remediation, so its planned verdict *is* vanilla).
    pub tier: Option<Tier>,
    /// The baseline sweep driven first (workloads, workers, force and
    /// engine configuration all apply to the matrix stage too).
    pub sweep: SweepConfig,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        MatrixConfig {
            oses: os::db(),
            tier: None,
            sweep: SweepConfig::default(),
        }
    }
}

/// Aggregate of one `(os, workload)` slice of the matrix — one row of
/// the generated `OS_MATRIX.md` table.
#[derive(Debug, Clone, PartialEq)]
pub struct OsWorkloadStats {
    /// OS name.
    pub os: String,
    /// Syscalls the OS implements (the profile size column).
    pub syscalls: usize,
    /// Workload aggregated.
    pub workload: Workload,
    /// Apps measured (cells present).
    pub apps: usize,
    /// Apps passing the full-Linux reference.
    pub linux_pass: usize,
    /// Apps passing with only the OS's implemented syscalls.
    pub vanilla_pass: usize,
    /// Apps passing once the plan's stub/fake guidance is applied.
    pub planned_pass: usize,
    /// Missing *required* syscalls ranked by how many failing apps need
    /// them (count desc, then syscall number) — the "what to implement
    /// next" column.
    pub top_missing: Vec<(Sysno, usize)>,
}

impl OsWorkloadStats {
    /// Vanilla pass rate over measured apps (0 when none measured).
    pub fn vanilla_rate(&self) -> f64 {
        self.vanilla_pass as f64 / self.apps.max(1) as f64
    }

    /// Planned pass rate over measured apps.
    pub fn planned_rate(&self) -> f64 {
        self.planned_pass as f64 / self.apps.max(1) as f64
    }

    /// The plan's value on this OS: apps unlocked by stub/fake work
    /// alone, without implementing a single new syscall. (Saturating:
    /// the aggregation keeps planned ≥ vanilla, but a hand-built stats
    /// row must not panic the renderer.)
    pub fn plan_gain(&self) -> usize {
        self.planned_pass.saturating_sub(self.vanilla_pass)
    }
}

/// Aggregates stored matrix cells into per-`(os, workload)` statistics,
/// ordered by `(os, workload label)`. `sizes` maps OS names to their
/// implemented-syscall counts (unknown OSes get 0). Pure — shared by
/// the sweep summary and the `OS_MATRIX.md` renderer, so both always
/// agree.
pub fn aggregate(cells: &[MatrixCell], sizes: &BTreeMap<String, usize>) -> Vec<OsWorkloadStats> {
    let mut slices: BTreeMap<(&str, &str), Vec<&MatrixCell>> = BTreeMap::new();
    for cell in cells {
        slices
            .entry((cell.os.as_str(), cell.workload.label()))
            .or_default()
            .push(cell);
    }
    slices
        .into_iter()
        .map(|((os_name, _), slice)| {
            let mut missing: BTreeMap<Sysno, usize> = BTreeMap::new();
            for cell in &slice {
                if !cell.planned_at_least() {
                    for s in cell.missing_required.iter() {
                        *missing.entry(s).or_insert(0) += 1;
                    }
                }
            }
            let mut top_missing: Vec<(Sysno, usize)> = missing.into_iter().collect();
            top_missing.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            OsWorkloadStats {
                os: os_name.to_owned(),
                syscalls: sizes.get(os_name).copied().unwrap_or(0),
                workload: slice[0].workload,
                apps: slice.len(),
                linux_pass: slice.iter().filter(|c| c.linux_pass).count(),
                vanilla_pass: slice.iter().filter(|c| c.passes(Tier::Vanilla)).count(),
                // Best-known planned verdict: a measured planned outcome,
                // or the vanilla one as a lower bound — so a `--tier
                // vanilla` sweep never shows "with plan" below vanilla.
                planned_pass: slice.iter().filter(|c| c.planned_at_least()).count(),
                top_missing,
            }
        })
        .collect()
}

/// The matrix section of a [`SweepSummary`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatrixSummary {
    /// Cells measured fresh in this sweep.
    pub analyzed: usize,
    /// Cells served from the database.
    pub cached: usize,
    /// Per-`(os, workload)` aggregate rows over every cell now stored
    /// for the swept OSes, ordered by `(os, workload label)`.
    pub stats: Vec<OsWorkloadStats>,
}

/// Runs the fleet × OS matrix sweep: first the plain baseline sweep
/// (skip-if-cached, exactly [`Sweep::run`]), then — for every app whose
/// baseline is stored — one cell per `(os, workload)` on the bounded
/// worker pool, with skip-if-cached semantics against the
/// `env/<os>/matrix/` namespace. The returned summary is the baseline
/// summary with [`SweepSummary::matrix`] populated.
///
/// Apps whose baseline failed (including panicking models, which the
/// pool isolates into per-app [`SweepFailure`]s) are excluded from the
/// matrix rather than aborting it; their failures stay in
/// [`SweepSummary::failures`].
///
/// # Errors
///
/// Database I/O and corruption errors only.
pub fn sweep_matrix(
    db: &Database,
    apps: Vec<Box<dyn AppModel>>,
    cfg: &MatrixConfig,
) -> Result<SweepSummary, DbError> {
    // Stage 1: full-Linux baselines (pure cache hits when already swept).
    let sweep = Sweep::new(cfg.sweep.clone());
    let mut summary = sweep.run(db, apps)?;

    // Requirements for every app with a stored baseline, per workload.
    // Models are re-resolved from the registry by name inside each job:
    // the boxed inputs were consumed by the baseline sweep.
    let mut reqs: BTreeMap<(Workload, String), (AppRequirement, BTreeMap<String, bool>)> =
        BTreeMap::new();
    for report in &summary.reports {
        reqs.insert(
            (report.workload, report.app.clone()),
            (
                AppRequirement::from_report(report),
                report.baseline.features.clone(),
            ),
        );
    }
    // Fingerprints are computed once per distinct input, not once per
    // job: the cell inputs are the cross product of per-OS and per-app
    // fingerprints, so a warm sweep's per-job cost is map lookups only.
    let os_fps: BTreeMap<&str, Fingerprint> = cfg
        .oses
        .iter()
        .map(|o| (o.name.as_str(), fingerprint_of(o)))
        .collect();
    let req_fps: BTreeMap<&(Workload, String), (Fingerprint, Fingerprint)> = reqs
        .iter()
        .map(|(key, (req, features))| (key, (fingerprint_of(req), fingerprint_of(features))))
        .collect();

    struct Job<'a> {
        os: &'a OsSpec,
        req: &'a AppRequirement,
        baseline_features: &'a BTreeMap<String, bool>,
        workload: Workload,
        inputs: BTreeMap<String, Fingerprint>,
    }
    let mut jobs = Vec::new();
    for os_spec in &cfg.oses {
        for (key, (req, features)) in &reqs {
            let (req_fp, features_fp) = req_fps[key];
            let mut inputs = BTreeMap::new();
            inputs.insert("os".to_owned(), os_fps[os_spec.name.as_str()]);
            inputs.insert("requirement".to_owned(), req_fp);
            inputs.insert("features".to_owned(), features_fp);
            jobs.push(Job {
                os: os_spec,
                req,
                baseline_features: features,
                workload: key.0,
                inputs,
            });
        }
    }

    enum JobOut {
        Fresh,
        Cached,
        Skipped(SweepFailure),
        Db(DbError),
    }

    let script = TestScript::default();
    let workers = sweep.worker_count(jobs.len());
    let measures_both = cfg.tier != Some(Tier::Vanilla);
    let needs = |cell: &MatrixCell| -> bool {
        // A cached cell satisfies the sweep only when it covers every
        // tier this configuration measures.
        cell.vanilla.is_some() && (!measures_both || cell.planned.is_some())
    };
    let outcomes = pool::run_jobs(workers, &jobs, |job| {
        let key = loupe_db::matrix_key(&job.os.name, &job.req.app, job.workload);
        let current = db.is_current(ns::MATRIX, &key, &job.inputs);
        let stored = match db.load_matrix_cell(&job.os.name, &job.req.app, job.workload) {
            Ok(Some(cell)) if current && !cfg.sweep.force && needs(&cell) => {
                db.note_hit(ns::MATRIX);
                return JobOut::Cached;
            }
            Ok(stored) => stored,
            Err(e) => return JobOut::Db(e),
        };
        // Stale = a cell exists but its recorded inputs no longer match
        // (e.g. the OS profile or the app's baseline changed): the fresh
        // measurement *replaces* it — tiers measured against outdated
        // inputs must not survive tier composition. A current cell that
        // merely lacks a tier (a prior `--tier vanilla` sweep) keeps its
        // stored tiers and composes.
        let stale = stored.is_some() && !current;
        if stale {
            db.note_stale(ns::MATRIX);
        } else {
            db.note_miss(ns::MATRIX);
        }
        let Some(model) = loupe_apps::registry::find(&job.req.app) else {
            return JobOut::Skipped(SweepFailure {
                app: job.req.app.clone(),
                workload: job.workload,
                error: format!("no runnable model for `{}`", job.req.app),
            });
        };
        // The baseline sweep only stores reports whose baseline passed,
        // so every app reaching this point passed on full Linux.
        let cell = measure_cell(
            job.os,
            job.req,
            model.as_ref(),
            job.workload,
            true,
            cfg.tier,
            &script,
            Some(job.baseline_features),
        );
        let saved = if stale {
            db.save_matrix_cell_replacing(&cell)
        } else {
            db.save_matrix_cell(&cell)
        };
        if let Err(e) = saved {
            return JobOut::Db(e);
        }
        // Coverage after this save: replaced cells hold what was just
        // measured; composed cells keep any stored planned tier.
        let covers_both =
            measures_both || (!stale && stored.as_ref().is_some_and(|c| c.planned.is_some()));
        let meta = [(
            "tiers".to_owned(),
            if covers_both { "both" } else { "vanilla" }.to_owned(),
        )]
        .into();
        db.record_provenance(ns::MATRIX, &key, job.inputs.clone(), meta);
        JobOut::Fresh
    });

    let mut matrix = MatrixSummary::default();
    for (outcome, job) in outcomes.into_iter().zip(&jobs) {
        match outcome {
            Ok(JobOut::Fresh) => matrix.analyzed += 1,
            Ok(JobOut::Cached) => matrix.cached += 1,
            Ok(JobOut::Skipped(f)) => summary.failures.push(f),
            Ok(JobOut::Db(e)) => return Err(e),
            Err(panic) => summary.failures.push(SweepFailure {
                app: job.req.app.clone(),
                workload: job.workload,
                error: format!("matrix measurement panicked: {panic}"),
            }),
        }
    }
    summary.failures.sort_by(|a, b| {
        (a.app.as_str(), a.workload.label()).cmp(&(b.app.as_str(), b.workload.label()))
    });

    // Aggregate everything now stored for the swept OSes — including
    // cells from earlier (cached) sweeps, so the summary always reflects
    // the database the docs are rendered from.
    let swept: std::collections::BTreeSet<&str> =
        cfg.oses.iter().map(|o| o.name.as_str()).collect();
    let cells: Vec<MatrixCell> = db
        .load_matrix()?
        .into_iter()
        .filter(|c| swept.contains(c.os.as_str()))
        .collect();
    matrix.stats = aggregate(&cells, &os_sizes(&cfg.oses));
    summary.matrix = Some(matrix);
    summary.cache = db.session_cache_stats();
    Ok(summary)
}

/// OS name → implemented-syscall count, for aggregation.
pub fn os_sizes(oses: &[OsSpec]) -> BTreeMap<String, usize> {
    oses.iter()
        .map(|o| (o.name.clone(), o.supported.len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_apps::registry;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("loupe-matrix-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn small_cfg(oses: Vec<OsSpec>, workers: usize) -> MatrixConfig {
        MatrixConfig {
            oses,
            tier: None,
            sweep: SweepConfig {
                workloads: vec![Workload::HealthCheck],
                workers,
                ..SweepConfig::default()
            },
        }
    }

    #[test]
    fn matrix_sweep_measures_persists_and_caches() {
        let dir = tmpdir("cache");
        let db = Database::open(&dir).unwrap();
        let oses = vec![os::find("kerla").unwrap(), os::find("gvisor").unwrap()];
        let apps = || -> Vec<_> { registry::detailed().into_iter().take(4).collect() };

        let first = sweep_matrix(&db, apps(), &small_cfg(oses.clone(), 2)).unwrap();
        let matrix = first.matrix.as_ref().expect("matrix section present");
        assert_eq!(matrix.analyzed, 2 * 4, "2 OSes x 4 apps x 1 workload");
        assert_eq!(matrix.cached, 0);
        assert_eq!(matrix.stats.len(), 2);
        for row in &matrix.stats {
            assert_eq!(row.apps, 4);
            assert_eq!(row.linux_pass, 4);
            assert!(row.planned_pass >= row.vanilla_pass, "{row:?}");
        }
        assert!(db
            .load_matrix_cell("kerla", "redis", Workload::HealthCheck)
            .unwrap()
            .is_some());

        // Second sweep: baselines and cells are all cache hits.
        let second = sweep_matrix(&db, apps(), &small_cfg(oses, 2)).unwrap();
        assert_eq!(second.analyzed, 0);
        let matrix = second.matrix.as_ref().unwrap();
        assert_eq!(matrix.analyzed, 0, "cells cached");
        assert_eq!(matrix.cached, 8);
        assert_eq!(matrix.stats, first.matrix.as_ref().unwrap().stats);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn vanilla_only_sweep_is_completed_by_a_full_sweep() {
        let dir = tmpdir("tier");
        let db = Database::open(&dir).unwrap();
        let oses = vec![os::find("kerla").unwrap()];
        let apps = || -> Vec<_> { registry::detailed().into_iter().take(2).collect() };

        let mut cfg = small_cfg(oses, 1);
        cfg.tier = Some(Tier::Vanilla);
        sweep_matrix(&db, apps(), &cfg).unwrap();
        let cell = db
            .load_matrix_cell("kerla", apps()[0].name(), Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert!(cell.vanilla.is_some());
        assert!(cell.planned.is_none(), "planned tier not measured yet");

        // A full sweep re-measures only what is missing and composes.
        cfg.tier = None;
        let full = sweep_matrix(&db, apps(), &cfg).unwrap();
        assert_eq!(full.matrix.as_ref().unwrap().analyzed, 2);
        let cell = db
            .load_matrix_cell("kerla", apps()[0].name(), Workload::HealthCheck)
            .unwrap()
            .unwrap();
        assert!(cell.vanilla.is_some() && cell.planned.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn aggregation_is_deterministic_and_invariant_preserving() {
        let dir = tmpdir("agg");
        let db = Database::open(&dir).unwrap();
        let cfg = small_cfg(os::db(), 0);
        let apps: Vec<_> = registry::detailed().into_iter().take(6).collect();
        let summary = sweep_matrix(&db, apps, &cfg).unwrap();
        let matrix = summary.matrix.unwrap();
        assert_eq!(matrix.stats.len(), os::db().len(), "one row per OS");
        for row in &matrix.stats {
            assert!(row.vanilla_pass <= row.planned_pass);
            assert!(row.planned_pass <= row.linux_pass);
            assert!(row.linux_pass <= row.apps);
            assert!(row.syscalls > 0, "{}: profile size rendered", row.os);
            for w in row.top_missing.windows(2) {
                assert!(w[0].1 >= w[1].1, "ranked by blocked-app count");
            }
        }
        // gvisor (211 syscalls) runs at least as much vanilla as browsix (45).
        let rate = |name: &str| {
            matrix
                .stats
                .iter()
                .find(|r| r.os == name)
                .unwrap()
                .vanilla_rate()
        };
        assert!(rate("gvisor") >= rate("browsix"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
