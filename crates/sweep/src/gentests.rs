//! Fleet-wide conformance-suite generation on the bounded worker pool:
//! the `loupe gentests` stage.
//!
//! Stage 1 is exactly the fleet × OS matrix sweep ([`sweep_matrix`]) —
//! pure cache hits when the database is already populated. Stage 2 then
//! compiles, for every `(os, workload, app)` cell with a stored
//! baseline, the app's measurement corpus into a
//! [`ConformanceSuite`](loupe_gentests::ConformanceSuite), persisting it
//! under the database's `gentests/<os>/<workload>/<app>.json` namespace
//! with skip-if-identical semantics. Every generated suite is
//! immediately **self-validated**: executed against the OS's vanilla
//! and planned kernel profiles, its verdicts compared with the matrix
//! cell's — a disagreement means the generator, the matrix sweep and
//! the planner no longer tell the same story, and fails the sweep's
//! caller (CI runs this on every push).
//!
//! `--check` mode regenerates in memory and compares against the stored
//! suites without writing: a mismatch (or a missing suite) is reported
//! as *stale*, mirroring `loupe report --check`'s drift contract.

use std::collections::BTreeMap;

use loupe_apps::{AppModel, Workload};
use loupe_core::{fingerprint_of, AppReport, Fingerprint};
use loupe_db::{ns, Database, DbError};
use loupe_gentests::ConformanceSuite;
use loupe_plan::{OsSpec, Tier};

use crate::matrix::{sweep_matrix, MatrixConfig};
use crate::{pool, Sweep, SweepFailure, SweepSummary};

/// Configuration of a conformance-suite generation sweep.
#[derive(Debug, Clone, Default)]
pub struct GentestsConfig {
    /// The matrix sweep driven first; its OS list, workloads, worker
    /// bound and force flag govern suite generation too.
    pub matrix: MatrixConfig,
    /// Drift-check mode: regenerate in memory, compare with stored
    /// suites, write nothing. Mismatching or missing suites are
    /// reported in [`GentestsSummary::stale`].
    pub check: bool,
}

/// Aggregate of one `(os, workload)` slice of generated suites — one
/// row of `docs/CONFORMANCE.md`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteSliceStats {
    /// OS name.
    pub os: String,
    /// Workload the suites were generated for.
    pub workload: Workload,
    /// Suites in the slice (one per app with a stored baseline).
    pub suites: usize,
    /// Total conformance cases across the slice.
    pub cases: usize,
    /// Suites whose executed vanilla-tier verdict passes.
    pub vanilla_pass: usize,
    /// Suites whose executed planned-tier verdict passes.
    pub planned_pass: usize,
}

/// One `(suite verdict, matrix verdict)` mismatch — the self-validation
/// failure the meta-test asserts never happens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disagreement {
    /// OS of the disagreeing cell.
    pub os: String,
    /// App of the disagreeing cell.
    pub app: String,
    /// Workload of the disagreeing cell.
    pub workload: Workload,
    /// Remediation tier on which the verdicts split.
    pub tier: Tier,
    /// What the executed suite said.
    pub suite_pass: bool,
    /// What the stored matrix cell said.
    pub matrix_pass: bool,
}

/// Outcome of a conformance-suite generation sweep.
#[derive(Debug)]
pub struct GentestsSummary {
    /// The underlying baseline + matrix sweep summary.
    pub base: SweepSummary,
    /// Suites generated (written) fresh in this sweep.
    pub generated: usize,
    /// Suites already stored byte-identically.
    pub cached: usize,
    /// `(os, app, workload)` cells whose stored suite is missing or no
    /// longer matches the corpus (populated only in check mode).
    pub stale: Vec<(String, String, Workload)>,
    /// Per-`(os, workload)` aggregate rows, ordered by
    /// `(os, workload label)`.
    pub stats: Vec<SuiteSliceStats>,
    /// Suite-vs-matrix verdict mismatches (empty means the generator,
    /// the matrix sweep and the planner mutually agree).
    pub disagreements: Vec<Disagreement>,
}

impl GentestsSummary {
    /// Whether the sweep is clean: no stale suites and no verdict
    /// disagreements — the condition CI enforces.
    pub fn is_clean(&self) -> bool {
        self.stale.is_empty() && self.disagreements.is_empty()
    }
}

/// Runs the conformance-suite generation sweep (see the module docs).
///
/// # Errors
///
/// Database I/O and corruption errors only; per-cell panics become
/// [`SweepFailure`]s on the base summary.
pub fn sweep_gentests(
    db: &Database,
    apps: Vec<Box<dyn AppModel>>,
    cfg: &GentestsConfig,
) -> Result<GentestsSummary, DbError> {
    // Stage 1: baselines + matrix cells (cache hits when populated).
    let mut summary = sweep_matrix(db, apps, &cfg.matrix)?;

    // One job per (os, stored baseline report). The reports are moved
    // out of the summary for the jobs' lifetime and restored after.
    let reports = std::mem::take(&mut summary.reports);
    struct Job<'a> {
        os: &'a OsSpec,
        report: &'a AppReport,
        inputs: BTreeMap<String, Fingerprint>,
    }
    // A suite is a pure function of (OS spec, measurement report,
    // matrix cell); the cell fingerprint comes from the matrix stage's
    // manifest record when available, falling back to hashing the
    // stored cell for databases predating provenance tracking.
    let os_fps: Vec<Fingerprint> = cfg.matrix.oses.iter().map(fingerprint_of).collect();
    let report_fps: Vec<Fingerprint> = reports.iter().map(fingerprint_of).collect();
    let mut jobs = Vec::new();
    for (os_idx, os_spec) in cfg.matrix.oses.iter().enumerate() {
        for (r_idx, report) in reports.iter().enumerate() {
            let mut inputs = BTreeMap::new();
            inputs.insert("os".to_owned(), os_fps[os_idx]);
            inputs.insert("report".to_owned(), report_fps[r_idx]);
            let mkey = loupe_db::matrix_key(&os_spec.name, &report.app, report.workload);
            match db.recorded_output(ns::MATRIX, &mkey) {
                Some(fp) => {
                    inputs.insert("cell".to_owned(), fp);
                }
                None => {
                    if let Some(cell) =
                        db.load_matrix_cell(&os_spec.name, &report.app, report.workload)?
                    {
                        inputs.insert("cell".to_owned(), fingerprint_of(&cell));
                    }
                }
            }
            jobs.push(Job {
                os: os_spec,
                report,
                inputs,
            });
        }
    }

    struct CellOut {
        cached: bool,
        stale: bool,
        cases: usize,
        vanilla_pass: bool,
        planned_pass: bool,
        disagreements: Vec<(Tier, bool, bool)>,
    }
    enum JobOut {
        Done(CellOut),
        Db(DbError),
    }

    let force = cfg.matrix.sweep.force;
    let workers = Sweep::new(cfg.matrix.sweep.clone()).worker_count(jobs.len());
    let outcomes = pool::run_jobs(workers, &jobs, |job| {
        let (os, app, workload) = (&job.os.name, &job.report.app, job.report.workload);
        let key = loupe_db::suite_key(os, app, workload);
        let current = db.is_current(ns::SUITES, &key, &job.inputs);
        if current && !force {
            // Provenance is current: serve the recorded aggregate
            // without regenerating (generation is a pure function of
            // the recorded inputs, so this is valid in check mode
            // too). Only clean cells take this path — anything with a
            // recorded disagreement is always re-derived.
            if let Some(meta) = db.recorded_meta(ns::SUITES, &key) {
                if let (Some(cases), Some(vanilla_pass), Some(planned_pass), Some("0")) = (
                    meta.get("cases").and_then(|s| s.parse::<usize>().ok()),
                    meta.get("vanilla_pass").map(|s| s == "true"),
                    meta.get("planned_pass").map(|s| s == "true"),
                    meta.get("disagreements").map(String::as_str),
                ) {
                    db.note_hit(ns::SUITES);
                    return JobOut::Done(CellOut {
                        cached: true,
                        stale: false,
                        cases,
                        vanilla_pass,
                        planned_pass,
                        disagreements: Vec::new(),
                    });
                }
            }
        }
        let cell = match db.load_matrix_cell(os, app, workload) {
            Ok(cell) => cell,
            Err(e) => return JobOut::Db(e),
        };
        let fresh = ConformanceSuite::generate(job.os, job.report, cell.as_ref());
        let stored = match db.load_suite(os, app, workload) {
            Ok(stored) => stored,
            Err(e) => return JobOut::Db(e),
        };
        let had_entry = stored.is_some() || db.recorded_output(ns::SUITES, &key).is_some();
        let identical = stored.as_ref() == Some(&fresh);
        let disagreements = fresh.disagreements(job.os);
        let vanilla_pass = fresh.verdict(job.os, Tier::Vanilla);
        let planned_pass = fresh.verdict(job.os, Tier::Planned);
        let mut meta = BTreeMap::new();
        meta.insert("cases".to_owned(), fresh.cases.len().to_string());
        meta.insert("vanilla_pass".to_owned(), vanilla_pass.to_string());
        meta.insert("planned_pass".to_owned(), planned_pass.to_string());
        meta.insert("disagreements".to_owned(), disagreements.len().to_string());
        let (cached, stale) = if identical && !force {
            // Content already matches; the regeneration only happened
            // because provenance was missing or stale — heal the
            // record so the next sweep takes the fast path.
            if current {
                db.note_hit(ns::SUITES);
            } else {
                db.note_stale(ns::SUITES);
            }
            if !cfg.check {
                db.record_provenance(ns::SUITES, &key, job.inputs.clone(), meta);
            }
            (true, false)
        } else if cfg.check {
            if had_entry {
                db.note_stale(ns::SUITES);
            } else {
                db.note_miss(ns::SUITES);
            }
            (false, true)
        } else {
            if had_entry && !force {
                db.note_stale(ns::SUITES);
            } else {
                db.note_miss(ns::SUITES);
            }
            if let Err(e) = db.save_suite(&fresh) {
                return JobOut::Db(e);
            }
            db.record_provenance(ns::SUITES, &key, job.inputs.clone(), meta);
            (false, false)
        };
        JobOut::Done(CellOut {
            cached,
            stale,
            cases: fresh.cases.len(),
            vanilla_pass,
            planned_pass,
            disagreements,
        })
    });

    let mut generated = 0;
    let mut cached = 0;
    let mut stale = Vec::new();
    let mut disagreements = Vec::new();
    let mut slices: BTreeMap<(String, &'static str), SuiteSliceStats> = BTreeMap::new();
    let mut failures: Vec<SweepFailure> = Vec::new();
    for (outcome, job) in outcomes.into_iter().zip(&jobs) {
        let key = (job.os.name.clone(), job.report.workload.label());
        match outcome {
            Ok(JobOut::Done(out)) => {
                if out.cached {
                    cached += 1;
                } else if out.stale {
                    stale.push((
                        job.os.name.clone(),
                        job.report.app.clone(),
                        job.report.workload,
                    ));
                } else {
                    generated += 1;
                }
                for (tier, suite_pass, matrix_pass) in out.disagreements {
                    disagreements.push(Disagreement {
                        os: job.os.name.clone(),
                        app: job.report.app.clone(),
                        workload: job.report.workload,
                        tier,
                        suite_pass,
                        matrix_pass,
                    });
                }
                let slice = slices.entry(key).or_insert_with(|| SuiteSliceStats {
                    os: job.os.name.clone(),
                    workload: job.report.workload,
                    suites: 0,
                    cases: 0,
                    vanilla_pass: 0,
                    planned_pass: 0,
                });
                slice.suites += 1;
                slice.cases += out.cases;
                slice.vanilla_pass += usize::from(out.vanilla_pass);
                slice.planned_pass += usize::from(out.planned_pass);
            }
            Ok(JobOut::Db(e)) => return Err(e),
            Err(panic) => failures.push(SweepFailure {
                app: job.report.app.clone(),
                workload: job.report.workload,
                error: format!("suite generation panicked: {panic}"),
            }),
        }
    }
    drop(jobs);
    summary.reports = reports;
    summary.cache = db.session_cache_stats();
    summary.failures.extend(failures);
    summary.failures.sort_by(|a, b| {
        (a.app.as_str(), a.workload.label()).cmp(&(b.app.as_str(), b.workload.label()))
    });
    stale.sort_by(|a, b| {
        (a.0.as_str(), a.1.as_str(), a.2.label()).cmp(&(b.0.as_str(), b.1.as_str(), b.2.label()))
    });
    disagreements.sort_by(|a, b| {
        (
            a.os.as_str(),
            a.app.as_str(),
            a.workload.label(),
            a.tier.label(),
        )
            .cmp(&(
                b.os.as_str(),
                b.app.as_str(),
                b.workload.label(),
                b.tier.label(),
            ))
    });

    Ok(GentestsSummary {
        base: summary,
        generated,
        cached,
        stale,
        stats: slices.into_values().collect(),
        disagreements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SweepConfig;
    use loupe_apps::registry;
    use loupe_plan::os;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("loupe-gentests-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn small_cfg(oses: Vec<loupe_plan::OsSpec>, workers: usize) -> GentestsConfig {
        GentestsConfig {
            matrix: MatrixConfig {
                oses,
                tier: None,
                sweep: SweepConfig {
                    workloads: vec![Workload::HealthCheck],
                    workers,
                    ..SweepConfig::default()
                },
            },
            check: false,
        }
    }

    #[test]
    fn generates_persists_caches_and_self_validates() {
        let dir = tmpdir("cache");
        let db = Database::open(&dir).unwrap();
        let oses = vec![os::find("kerla").unwrap(), os::find("gvisor").unwrap()];
        let apps = || -> Vec<_> { registry::detailed().into_iter().take(4).collect() };

        let first = sweep_gentests(&db, apps(), &small_cfg(oses.clone(), 2)).unwrap();
        assert_eq!(first.generated, 2 * 4, "2 OSes x 4 apps x 1 workload");
        assert_eq!(first.cached, 0);
        assert!(first.is_clean(), "{:?}", first.disagreements);
        assert_eq!(first.stats.len(), 2);
        for row in &first.stats {
            assert_eq!(row.suites, 4);
            assert!(row.cases > 0);
            assert!(row.vanilla_pass <= row.planned_pass, "{row:?}");
        }
        let stored = db
            .load_suite("kerla", "redis", Workload::HealthCheck)
            .unwrap()
            .expect("suite persisted");
        assert!(stored.expected.vanilla.is_some(), "verdicts carried");

        // Second sweep: everything is a cache hit; a check passes clean.
        let second = sweep_gentests(&db, apps(), &small_cfg(oses.clone(), 2)).unwrap();
        assert_eq!(second.generated, 0);
        assert_eq!(second.cached, 8);
        assert_eq!(second.stats, first.stats);
        let mut check_cfg = small_cfg(oses, 2);
        check_cfg.check = true;
        let checked = sweep_gentests(&db, apps(), &check_cfg).unwrap();
        assert_eq!(checked.cached, 8);
        assert!(checked.stale.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_mode_flags_corrupted_suites_without_writing() {
        let dir = tmpdir("check");
        let db = Database::open(&dir).unwrap();
        let oses = vec![os::find("kerla").unwrap()];
        let apps = || -> Vec<_> { registry::detailed().into_iter().take(2).collect() };

        sweep_gentests(&db, apps(), &small_cfg(oses.clone(), 1)).unwrap();
        // Tamper with one stored suite.
        let mut broken = db
            .load_suite("kerla", apps()[0].name(), Workload::HealthCheck)
            .unwrap()
            .unwrap();
        broken.cases.pop();
        db.save_suite(&broken).unwrap();

        let mut cfg = small_cfg(oses, 1);
        cfg.check = true;
        let checked = sweep_gentests(&db, apps(), &cfg).unwrap();
        assert_eq!(checked.stale.len(), 1);
        assert!(!checked.is_clean());
        // Nothing was repaired in check mode...
        assert_eq!(
            db.load_suite("kerla", apps()[0].name(), Workload::HealthCheck)
                .unwrap()
                .unwrap(),
            broken
        );
        // ...but a normal sweep heals it.
        cfg.check = false;
        let healed = sweep_gentests(&db, apps(), &cfg).unwrap();
        assert_eq!(healed.generated, 1);
        assert_eq!(healed.cached, 1);
        assert!(healed.is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }
}
