//! The work-stealing worker pool shared by the sweep stages.
//!
//! Both the dynamic fleet sweep ([`crate::Sweep`]) and the static
//! analysis stage ([`crate::statics`]) fan a job list out over a fixed
//! number of worker threads. Jobs are dealt round-robin into per-worker
//! deques; a worker drains its own deque from the front and, when empty,
//! steals from the back of its neighbours'. Compared to the previous
//! single shared counter, contention stays on the cold path (stealing
//! only happens when a worker runs dry), and long-tailed jobs no longer
//! serialise behind one hot mutex.
//!
//! The pool guarantees two properties the stages rely on:
//!
//! * **deterministic ordering** — job *i*'s outcome lands in slot *i*
//!   of the returned vector regardless of worker count or scheduling;
//! * **panic isolation** — a job that panics (e.g. a buggy app model)
//!   yields `Err(panic message)` for *that job only*; the worker thread
//!   and the result slots survive, and every other job still runs.
//!   Before this existed, one panicking model poisoned the slots mutex
//!   and took the whole sweep down with an opaque `expect` failure.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Runs `f` over every job on `workers` threads, returning one slot per
/// job in job order. A panicking job resolves to `Err` with the panic
/// payload rendered as text.
pub(crate) fn run_jobs<J, R>(
    workers: usize,
    jobs: &[J],
    f: impl Fn(&J) -> R + Sync,
) -> Vec<Result<R, String>>
where
    J: Sync,
    R: Send,
{
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = workers.max(1).min(jobs.len());

    // Round-robin deal: worker w owns jobs w, w+workers, w+2·workers…
    // Every job index appears in exactly one deque and is removed
    // exactly once (own pop or steal), so each slot is written once.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..jobs.len()).step_by(workers).collect()))
        .collect();
    // One mutex per slot instead of one around the whole vector: a
    // result landing never contends with another worker's result.
    let slots: Vec<Mutex<Option<Result<R, String>>>> =
        (0..jobs.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                // Own work first (front), then steal from the victims'
                // opposite end to minimise interference.
                let mut found = queues[me].lock().expect("queue lock").pop_front();
                if found.is_none() {
                    for offset in 1..workers {
                        let victim = (me + offset) % workers;
                        if let Some(i) = queues[victim].lock().expect("queue lock").pop_back() {
                            found = Some(i);
                            break;
                        }
                    }
                }
                // Jobs never respawn: once every deque is empty the pool
                // is drained and the worker can retire.
                let Some(i) = found else {
                    break;
                };
                // The job body runs *outside* any lock, so even a
                // panicking job cannot poison anything; catch_unwind
                // keeps the worker alive for the remaining jobs.
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| f(&jobs[i]))).map_err(|p| panic_message(&*p));
                *slots[i].lock().expect("no job runs under a slot lock") = Some(outcome);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no job runs under a slot lock")
                .expect("every job ran")
        })
        .collect()
}

/// Renders a panic payload the way `std` does for unwinding panics.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unprintable panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_land_in_job_order() {
        let jobs: Vec<usize> = (0..64).collect();
        let out = run_jobs(8, &jobs, |&j| j * 2);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i * 2);
        }
    }

    #[test]
    fn a_panicking_job_fails_alone() {
        let jobs: Vec<usize> = (0..16).collect();
        let out = run_jobs(4, &jobs, |&j| {
            assert!(j != 7, "job seven exploded");
            j
        });
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("job seven exploded"), "{msg}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i, "other jobs unaffected");
            }
        }
    }

    #[test]
    fn empty_job_list_is_empty() {
        let out: Vec<Result<(), String>> = run_jobs(4, &[] as &[u8], |_| ());
        assert!(out.is_empty());
    }

    #[test]
    fn idle_workers_steal_the_long_tail() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Worker 0 owns all the slow jobs under round-robin dealing with
        // 2 workers (slow jobs sit at even indices). If stealing works,
        // worker 1 must end up executing some of them; without stealing
        // it would finish its fast half and retire.
        let jobs: Vec<usize> = (0..32).collect();
        let executed = AtomicUsize::new(0);
        let out = run_jobs(2, &jobs, |&j| {
            if j % 2 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            executed.fetch_add(1, Ordering::Relaxed);
            j
        });
        assert_eq!(executed.load(Ordering::Relaxed), 32, "every job ran once");
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i);
        }
    }

    #[test]
    fn worker_counts_do_not_change_results() {
        let jobs: Vec<usize> = (0..41).collect();
        let reference = run_jobs(1, &jobs, |&j| j * j);
        for workers in [2, 3, 8, 64] {
            let out = run_jobs(workers, &jobs, |&j| j * j);
            for (a, b) in reference.iter().zip(out.iter()) {
                assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
            }
        }
    }
}
