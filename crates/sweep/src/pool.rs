//! The bounded worker pool shared by the sweep stages.
//!
//! Both the dynamic fleet sweep ([`crate::Sweep`]) and the static
//! analysis stage ([`crate::statics`]) fan a job list out over a fixed
//! number of worker threads. The pool guarantees two properties the
//! stages rely on:
//!
//! * **deterministic ordering** — job *i*'s outcome lands in slot *i*
//!   of the returned vector regardless of worker count or scheduling;
//! * **panic isolation** — a job that panics (e.g. a buggy app model)
//!   yields `Err(panic message)` for *that job only*; the worker thread
//!   and the slots mutex survive, and every other job still runs.
//!   Before this existed, one panicking model poisoned the slots mutex
//!   and took the whole sweep down with an opaque `expect` failure.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` over every job on `workers` threads, returning one slot per
/// job in job order. A panicking job resolves to `Err` with the panic
/// payload rendered as text.
pub(crate) fn run_jobs<J, R>(
    workers: usize,
    jobs: &[J],
    f: impl Fn(&J) -> R + Sync,
) -> Vec<Result<R, String>>
where
    J: Sync,
    R: Send,
{
    if jobs.is_empty() {
        return Vec::new();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<R, String>>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else {
                    break;
                };
                // The job body runs *outside* the slots lock, so even a
                // panicking job cannot poison it; catch_unwind keeps the
                // worker thread alive for the remaining jobs.
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| f(job))).map_err(|p| panic_message(&*p));
                slots.lock().expect("no job runs under the slots lock")[i] = Some(outcome);
            });
        }
    });

    slots
        .into_inner()
        .expect("no job runs under the slots lock")
        .into_iter()
        .map(|o| o.expect("every job ran"))
        .collect()
}

/// Renders a panic payload the way `std` does for unwinding panics.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unprintable panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_land_in_job_order() {
        let jobs: Vec<usize> = (0..64).collect();
        let out = run_jobs(8, &jobs, |&j| j * 2);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i * 2);
        }
    }

    #[test]
    fn a_panicking_job_fails_alone() {
        let jobs: Vec<usize> = (0..16).collect();
        let out = run_jobs(4, &jobs, |&j| {
            assert!(j != 7, "job seven exploded");
            j
        });
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("job seven exploded"), "{msg}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i, "other jobs unaffected");
            }
        }
    }

    #[test]
    fn empty_job_list_is_empty() {
        let out: Vec<Result<(), String>> = run_jobs(4, &[] as &[u8], |_| ());
        assert!(out.is_empty());
    }
}
