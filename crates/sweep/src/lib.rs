//! Fleet-wide analysis sweeps and population-scale reporting.
//!
//! The paper's headline artifact is an *aggregate* view over ~116
//! applications: which system calls a compatibility layer must really
//! implement, and which it can stub or fake. This crate turns the
//! per-app engine into that population-scale system:
//!
//! * [`Sweep`] drives `Engine::analyze` concurrently across a whole
//!   application fleet × workload set on a bounded worker pool, with
//!   deterministic result ordering and incremental persistence into a
//!   [`Database`] (cached entries are skipped unless forced; re-measured
//!   entries merge conservatively via the database's merge rules);
//! * [`FleetStats`] aggregates the resulting reports into per-syscall
//!   rollups (apps using / requiring / able to stub or fake each call,
//!   ranked by `loupe_plan::api_importance`);
//! * [`plans`] replays the Table 1 support plan of every curated OS on
//!   a restricted kernel (`loupe_kernel::RestrictedKernel`) and persists
//!   the per-step verdicts — turning predicted plans into validated
//!   ones;
//! * [`gentests`] compiles every stored corpus into an executable
//!   conformance suite (`loupe_gentests`), persisted and self-validated
//!   against the matrix verdicts;
//! * [`report`] renders the database as kerla-style Markdown: a
//!   fleet-wide `COMPATIBILITY.md` support matrix, a `SUPPORT_PLANS.md`
//!   per-OS plan book with validation verdicts, plus per-app pages,
//!   with a drift check for CI.
//!
//! # Examples
//!
//! ```
//! use loupe_apps::{registry, Workload};
//! use loupe_db::Database;
//! use loupe_sweep::{Sweep, SweepConfig};
//!
//! let dir = std::env::temp_dir().join(format!("loupe-sweep-doc-{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let db = Database::open(&dir).unwrap();
//! let sweep = Sweep::new(SweepConfig {
//!     workloads: vec![Workload::HealthCheck],
//!     ..SweepConfig::default()
//! });
//! let summary = sweep.run(&db, registry::detailed()).unwrap();
//! assert_eq!(summary.reports.len(), 12);
//! // A second sweep over the same fleet is pure cache hits.
//! let again = sweep.run(&db, registry::detailed()).unwrap();
//! assert_eq!(again.cached, 12);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod gentests;
pub mod matrix;
pub mod plans;
pub(crate) mod pool;
pub mod report;
pub mod statics;

pub use gentests::{
    sweep_gentests, Disagreement, GentestsConfig, GentestsSummary, SuiteSliceStats,
};
pub use matrix::{sweep_matrix, MatrixConfig, MatrixSummary, OsWorkloadStats};
pub use plans::{validate_curated_plans, validate_plans, PlanSweepError};
pub use statics::{
    compare, sweep_static, sweep_static_levels, AppComparison, CompareError, Comparison,
    LevelStats, PlanDelta, StaticSweepSummary, WitnessExample,
};

use std::collections::BTreeMap;

use loupe_apps::{AppModel, Workload};
use loupe_core::{
    fingerprint_of, transfer_hints, AnalysisConfig, AppReport, Engine, FeatureClass, Fingerprint,
    RunStats,
};
use loupe_db::{ns, CacheStats, Database, DbError};
use loupe_plan::{api_importance, AppRequirement, ImportancePoint};
use loupe_syscalls::{Category, Sysno};

/// Fingerprint of the analysis configuration *as a measurement input*:
/// scheduling-only knobs (probe-scheduler jobs, replica parallelism) are
/// normalised out because every worker count produces byte-identical
/// reports — changing parallelism must never invalidate stored results.
pub fn analysis_fingerprint(cfg: &AnalysisConfig) -> Fingerprint {
    let mut canonical = cfg.clone();
    canonical.jobs = 0;
    canonical.parallel = false;
    fingerprint_of(&canonical)
}

/// Input fingerprints of one baseline measurement, keyed by role — what
/// the manifest compares to decide whether a stored baseline is current.
/// Shared by the sweep driver and the CLI's single-app `analyze` path so
/// both record identical provenance.
pub fn baseline_inputs(
    app: &dyn AppModel,
    workload: Workload,
    analysis: &AnalysisConfig,
) -> BTreeMap<String, Fingerprint> {
    let mut inputs = BTreeMap::new();
    inputs.insert("app".to_owned(), fingerprint_of(&(app.spec(), app.code())));
    inputs.insert("workload".to_owned(), fingerprint_of(&workload));
    inputs.insert("config".to_owned(), analysis_fingerprint(analysis));
    inputs
}

/// Cross-application knowledge transfer (§6 future work): the sweep
/// measures a seed subset of the fleet in full, builds conservative
/// per-workload hints from the seed reports, and analyses the remaining
/// apps with the hinted engine — skipping the stub/fake runs of syscalls
/// the whole seed agrees on. Each hinted app's confirmation run still
/// validates the transferred conclusions end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferConfig {
    /// A syscall is hinted only when at least this many seed reports
    /// traced it and all of them agree on its classification.
    pub min_agreement: usize,
    /// Number of leading apps measured in full as the seed.
    pub seed: usize,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            min_agreement: 3,
            seed: 8,
        }
    }
}

/// Configuration of a fleet sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Workloads to measure for every app.
    pub workloads: Vec<Workload>,
    /// Worker threads; `0` picks `min(available_parallelism, 16)`.
    pub workers: usize,
    /// Engine configuration used for fresh measurements.
    pub analysis: AnalysisConfig,
    /// Re-measure entries that are already in the database (the new
    /// measurement merges conservatively with the stored one).
    pub force: bool,
    /// Two-pass hint transfer; `None` measures every app in full.
    pub transfer: Option<TransferConfig>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            workloads: vec![Workload::Benchmark],
            workers: 0,
            analysis: AnalysisConfig::fast(),
            force: false,
            transfer: None,
        }
    }
}

/// One failed measurement within an otherwise successful sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepFailure {
    /// Application name.
    pub app: String,
    /// Workload that failed.
    pub workload: Workload,
    /// Engine error text (e.g. a baseline failure).
    pub error: String,
}

/// The outcome of a sweep.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Entries measured fresh in this sweep.
    pub analyzed: usize,
    /// Entries served from the database without re-running the engine.
    pub cached: usize,
    /// Apps whose baseline failed (not persisted).
    pub failures: Vec<SweepFailure>,
    /// Every (app, workload) report, as stored in the database,
    /// deterministically ordered by `(app, workload label)`.
    pub reports: Vec<AppReport>,
    /// Engine-run accounting summed over this sweep's fresh measurements
    /// — `transfer_skips`/`saved_runs` quantify what hint transfer saved.
    pub runs: RunStats,
    /// The fleet × OS matrix section: populated by
    /// [`matrix::sweep_matrix`], `None` for a plain baseline sweep.
    pub matrix: Option<MatrixSummary>,
    /// Cache hit/miss/stale counters accumulated on the database this
    /// session (all stages sharing the `Database` handle contribute).
    pub cache: CacheStats,
}

enum JobOutcome {
    Fresh(AppReport),
    Cached(AppReport),
    Failed(SweepFailure),
    Db(DbError),
}

/// The concurrent fleet-sweep driver.
#[derive(Debug, Clone, Default)]
pub struct Sweep {
    cfg: SweepConfig,
}

impl Sweep {
    /// Creates a driver with the given configuration.
    pub fn new(cfg: SweepConfig) -> Sweep {
        Sweep { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &SweepConfig {
        &self.cfg
    }

    /// Effective worker count for `jobs` queued jobs.
    pub(crate) fn worker_count(&self, jobs: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16);
        let chosen = if self.cfg.workers == 0 {
            auto
        } else {
            self.cfg.workers
        };
        chosen.clamp(1, jobs.max(1))
    }

    /// Runs the sweep over `apps` × `config.workloads`, persisting every
    /// successful measurement into `db` as soon as it completes.
    ///
    /// Results are deterministic: the same fleet, workloads and starting
    /// database produce the same `reports` (and therefore byte-identical
    /// rendered matrices) regardless of worker count or scheduling.
    ///
    /// # Errors
    ///
    /// Database I/O and corruption errors. Per-app *engine* failures do
    /// not abort the sweep; they are collected in
    /// [`SweepSummary::failures`].
    pub fn run(
        &self,
        db: &Database,
        mut apps: Vec<Box<dyn AppModel>>,
    ) -> Result<SweepSummary, DbError> {
        // Drop duplicate app names: two jobs for the same (app, workload)
        // would race on one database file (save is load-merge-write).
        let mut seen = std::collections::BTreeSet::new();
        apps.retain(|app| seen.insert(app.name().to_owned()));

        // Warm the namespace snapshots up front so the per-job cache
        // checks are memory lookups. Best-effort: a failure here only
        // means jobs fall back to per-file reads.
        if !apps.is_empty() {
            let _ = db.preload();
        }

        let jobs_for = |range: std::ops::Range<usize>| -> Vec<(usize, Workload)> {
            range
                .flat_map(|a| self.cfg.workloads.iter().map(move |&w| (a, w)))
                .collect()
        };

        let outcomes = match self.cfg.transfer {
            // An empty fleet (e.g. an out-of-range shard) sweeps to an
            // empty summary on both paths; the seed clamp below needs a
            // non-empty app list.
            None | Some(_) if apps.is_empty() => Vec::new(),
            None => self.run_pass(db, &apps, &jobs_for(0..apps.len()), &BTreeMap::new()),
            Some(transfer) => {
                // Pass 1: measure the seed subset in full.
                let seed = transfer.seed.clamp(1, apps.len());
                let mut outcomes = self.run_pass(db, &apps, &jobs_for(0..seed), &BTreeMap::new());
                // Conservative per-workload hints from the seed reports
                // (cached seed entries teach too — they are stored
                // full measurements of the same fleet).
                let mut hints: BTreeMap<Workload, BTreeMap<Sysno, FeatureClass>> = BTreeMap::new();
                for &workload in &self.cfg.workloads {
                    let teachers: Vec<AppReport> = outcomes
                        .iter()
                        .filter_map(|o| match o {
                            JobOutcome::Fresh(r) | JobOutcome::Cached(r)
                                if r.workload == workload =>
                            {
                                Some(r.clone())
                            }
                            _ => None,
                        })
                        .collect();
                    let mut workload_hints = transfer_hints(&teachers, transfer.min_agreement);
                    // Only *avoidable* classes transfer: the combined
                    // confirmation run exercises them, and the engine's
                    // bisection revokes (re-measures) a wrong one. A
                    // transferred "required" class is never interposed,
                    // so a wrong one — an app whose `read` is fakeable
                    // while the whole seed requires it — would silently
                    // survive and change the final classification.
                    workload_hints.retain(|_, class| class.is_avoidable());
                    hints.insert(workload, workload_hints);
                }
                // Pass 2: the rest of the fleet rides on the hints.
                outcomes.extend(self.run_pass(db, &apps, &jobs_for(seed..apps.len()), &hints));
                outcomes
            }
        };

        let mut summary = SweepSummary {
            analyzed: 0,
            cached: 0,
            failures: Vec::new(),
            reports: Vec::new(),
            runs: RunStats::default(),
            matrix: None,
            cache: CacheStats::default(),
        };
        for outcome in outcomes {
            match outcome {
                JobOutcome::Fresh(r) => {
                    summary.analyzed += 1;
                    summary.runs.absorb(&r.stats);
                    summary.reports.push(r);
                }
                JobOutcome::Cached(r) => {
                    summary.cached += 1;
                    summary.reports.push(r);
                }
                JobOutcome::Failed(f) => summary.failures.push(f),
                JobOutcome::Db(e) => return Err(e),
            }
        }
        summary.reports.sort_by(|a, b| {
            (a.app.as_str(), a.workload.label()).cmp(&(b.app.as_str(), b.workload.label()))
        });
        summary.failures.sort_by(|a, b| {
            (a.app.as_str(), a.workload.label()).cmp(&(b.app.as_str(), b.workload.label()))
        });
        summary.cache = db.session_cache_stats();
        Ok(summary)
    }

    /// Runs one scheduling pass over `jobs` on the bounded worker pool.
    /// Each job's outcome lands in the slot of its job index, so the
    /// returned order never depends on worker scheduling. A job whose
    /// app model *panics* becomes a per-app [`SweepFailure`] naming the
    /// app, instead of poisoning the pool and killing the whole sweep.
    fn run_pass(
        &self,
        db: &Database,
        apps: &[Box<dyn AppModel>],
        jobs: &[(usize, Workload)],
        hints: &BTreeMap<Workload, BTreeMap<Sysno, FeatureClass>>,
    ) -> Vec<JobOutcome> {
        let workers = self.worker_count(jobs.len());
        pool::run_jobs(workers, jobs, |&(app_idx, workload)| {
            let engine = Engine::new(self.cfg.analysis.clone());
            self.run_job(db, &engine, apps[app_idx].as_ref(), workload, hints)
        })
        .into_iter()
        .zip(jobs)
        .map(|(outcome, &(app_idx, workload))| match outcome {
            Ok(o) => o,
            Err(panic) => JobOutcome::Failed(SweepFailure {
                app: apps[app_idx].name().to_owned(),
                workload,
                error: format!("app model panicked: {panic}"),
            }),
        })
        .collect()
    }

    fn run_job(
        &self,
        db: &Database,
        engine: &Engine,
        app: &dyn AppModel,
        workload: Workload,
        hints: &BTreeMap<Workload, BTreeMap<Sysno, FeatureClass>>,
    ) -> JobOutcome {
        let key = loupe_db::baseline_key(app.name(), workload);
        let inputs = baseline_inputs(app, workload, &self.cfg.analysis);
        // Current = the stored entry's recorded input fingerprints match
        // this job's. A stored entry with different (or unknown)
        // provenance is *stale*: it is re-measured and replaced, because
        // merging with content produced by other inputs would poison the
        // fresh measurement.
        let current = db.is_current(ns::BASELINES, &key, &inputs);
        let had_entry = match db.load(app.name(), workload) {
            Ok(Some(cached)) if current && !self.cfg.force => {
                db.note_hit(ns::BASELINES);
                return JobOutcome::Cached(cached);
            }
            Ok(existing) => existing.is_some(),
            Err(e) => return JobOutcome::Db(e),
        };
        let stale = had_entry && !current;
        if stale {
            db.note_stale(ns::BASELINES);
        } else {
            db.note_miss(ns::BASELINES);
        }
        let empty = BTreeMap::new();
        let workload_hints = hints.get(&workload).unwrap_or(&empty);
        let report = match engine.analyze_with_hints(app, workload, workload_hints) {
            Ok(r) => r,
            Err(e) => {
                return JobOutcome::Failed(SweepFailure {
                    app: app.name().to_owned(),
                    workload,
                    error: e.to_string(),
                })
            }
        };
        let saved = if stale {
            db.save_replacing(&report)
        } else {
            db.save(&report)
        };
        if let Err(e) = saved {
            return JobOutcome::Db(e);
        }
        if report.is_linux_baseline() {
            db.record_provenance(ns::BASELINES, &key, inputs, BTreeMap::new());
        }
        if !had_entry || stale {
            // The database now holds exactly this report (fresh save or
            // replacement), so skip the re-read.
            return JobOutcome::Fresh(report);
        }
        // A forced re-measure merged conservatively with the stored entry;
        // report what the database now holds so summaries match later reads.
        match db.load(&report.app, workload) {
            Ok(Some(stored)) => JobOutcome::Fresh(stored),
            Ok(None) => JobOutcome::Fresh(report),
            Err(e) => JobOutcome::Db(e),
        }
    }
}

/// Per-syscall aggregate over one workload's fleet reports: one row of
/// the compatibility matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SyscallRow {
    /// The system call.
    pub sysno: Sysno,
    /// Its broad category.
    pub category: Category,
    /// Apps whose workload traced it.
    pub apps_using: usize,
    /// Apps for which it must be implemented.
    pub apps_requiring: usize,
    /// Apps for which stubbing (`-ENOSYS`) passes.
    pub apps_stubbable: usize,
    /// Apps for which faking success passes.
    pub apps_fakeable: usize,
    /// Fraction of the fleet requiring it (the Fig. 3 importance).
    pub importance: f64,
}

impl SyscallRow {
    /// The cheapest support strategy that satisfies every app using this
    /// syscall: `implement` when anyone requires it; otherwise `stub` or
    /// `fake` when that single action works for every user; otherwise
    /// `stub or fake` (pick per app).
    pub fn advice(&self) -> &'static str {
        if self.apps_requiring > 0 {
            "implement"
        } else if self.apps_stubbable == self.apps_using {
            "stub"
        } else if self.apps_fakeable == self.apps_using {
            "fake"
        } else {
            "stub or fake"
        }
    }
}

/// Fleet-wide aggregate statistics for one workload.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// The workload aggregated.
    pub workload: Workload,
    /// Number of reports aggregated.
    pub apps: usize,
    /// Matrix rows, most-important first (required-by desc, then used-by
    /// desc, then syscall number).
    pub rows: Vec<SyscallRow>,
    /// The ranked importance curve over *required* sets (Fig. 3).
    pub importance: Vec<ImportancePoint>,
    /// Planner requirements, one per app (support-plan input).
    pub requirements: Vec<AppRequirement>,
}

impl FleetStats {
    /// Aggregates reports (all of one workload) into matrix rows.
    pub fn aggregate(workload: Workload, reports: &[AppReport]) -> FleetStats {
        use std::collections::BTreeMap;

        #[derive(Default)]
        struct Acc {
            using: usize,
            required: usize,
            stubbable: usize,
            fakeable: usize,
        }

        let mut acc: BTreeMap<Sysno, Acc> = BTreeMap::new();
        for report in reports {
            for &s in report.traced.keys() {
                acc.entry(s).or_default().using += 1;
            }
            for (&s, class) in &report.classes {
                let a = acc.entry(s).or_default();
                if class.is_required() {
                    a.required += 1;
                }
                if class.stub_ok {
                    a.stubbable += 1;
                }
                if class.fake_ok {
                    a.fakeable += 1;
                }
            }
        }

        let apps = reports.len();
        let total = apps.max(1) as f64;
        let mut rows: Vec<SyscallRow> = acc
            .into_iter()
            .map(|(sysno, a)| SyscallRow {
                sysno,
                category: Category::of(sysno),
                apps_using: a.using,
                apps_requiring: a.required,
                apps_stubbable: a.stubbable,
                apps_fakeable: a.fakeable,
                importance: a.required as f64 / total,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.apps_requiring
                .cmp(&a.apps_requiring)
                .then(b.apps_using.cmp(&a.apps_using))
                .then(a.sysno.cmp(&b.sysno))
        });

        let required_sets: Vec<_> = reports.iter().map(AppReport::required).collect();
        FleetStats {
            workload,
            apps,
            importance: api_importance(&required_sets),
            requirements: reports.iter().map(AppRequirement::from_report).collect(),
            rows,
        }
    }

    /// Syscalls required by at least one app.
    pub fn required_anywhere(&self) -> usize {
        self.rows.iter().filter(|r| r.apps_requiring > 0).count()
    }

    /// Syscalls traced somewhere but avoidable everywhere.
    pub fn avoidable_everywhere(&self) -> usize {
        self.rows.len() - self.required_anywhere()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loupe_apps::registry;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("loupe-sweep-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn health_sweep(workers: usize) -> Sweep {
        Sweep::new(SweepConfig {
            workloads: vec![Workload::HealthCheck],
            workers,
            ..SweepConfig::default()
        })
    }

    #[test]
    fn sweep_persists_and_caches() {
        let dir = tmpdir("cache");
        let db = Database::open(&dir).unwrap();
        let apps: Vec<_> = registry::detailed().into_iter().take(4).collect();
        let names: Vec<String> = apps.iter().map(|a| a.name().to_owned()).collect();

        let first = health_sweep(2).run(&db, apps).unwrap();
        assert_eq!(first.analyzed, 4);
        assert_eq!(first.cached, 0);
        assert!(first.failures.is_empty());
        for n in &names {
            assert!(db.contains(n, Workload::HealthCheck), "{n} persisted");
            assert!(db.load(n, Workload::HealthCheck).unwrap().is_some());
        }
        assert!(!db.contains("ghost", Workload::HealthCheck));

        let apps: Vec<_> = registry::detailed().into_iter().take(4).collect();
        let second = health_sweep(2).run(&db, apps).unwrap();
        assert_eq!(second.analyzed, 0, "second sweep is pure cache hits");
        assert_eq!(second.cached, 4);
        assert_eq!(first.reports, second.reports);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let dir_a = tmpdir("det-a");
        let dir_b = tmpdir("det-b");
        let db_a = Database::open(&dir_a).unwrap();
        let db_b = Database::open(&dir_b).unwrap();
        let apps = || -> Vec<_> { registry::detailed().into_iter().take(6).collect() };

        let serial = health_sweep(1).run(&db_a, apps()).unwrap();
        let parallel = health_sweep(6).run(&db_b, apps()).unwrap();
        assert_eq!(serial.reports, parallel.reports);
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn forced_resweep_merges_instead_of_overwriting() {
        let dir = tmpdir("force");
        let db = Database::open(&dir).unwrap();
        let apps = || -> Vec<_> { registry::detailed().into_iter().take(1).collect() };
        let first = health_sweep(1).run(&db, apps()).unwrap();
        let forced = Sweep::new(SweepConfig {
            workloads: vec![Workload::HealthCheck],
            workers: 1,
            force: true,
            ..SweepConfig::default()
        })
        .run(&db, apps())
        .unwrap();
        assert_eq!(forced.analyzed, 1);
        // Traced counts accumulate under the conservative merge.
        let s = *first.reports[0].traced.keys().next().unwrap();
        assert_eq!(
            forced.reports[0].traced[&s],
            first.reports[0].traced[&s] * 2
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An app model whose `run` panics — the regression fixture for the
    /// pool's panic isolation.
    struct PanickingApp;

    impl loupe_apps::AppModel for PanickingApp {
        fn name(&self) -> &str {
            "panicking-app"
        }

        fn spec(&self) -> loupe_apps::AppSpec {
            loupe_apps::AppSpec {
                name: "panicking-app".into(),
                version: "0".into(),
                year: 2024,
                port: None,
                kind: loupe_apps::AppKind::Utility,
                libc: loupe_apps::libc::LibcFlavor::MuslStatic,
            }
        }

        fn run(
            &self,
            _env: &mut loupe_apps::Env<'_>,
            _workload: Workload,
        ) -> Result<(), loupe_apps::Exit> {
            panic!("deliberate model bug");
        }

        fn code(&self) -> loupe_apps::AppCode {
            loupe_apps::AppCode::new()
        }
    }

    #[test]
    fn a_panicking_model_fails_its_app_not_the_sweep() {
        let dir = tmpdir("panic");
        let db = Database::open(&dir).unwrap();
        let mut apps: Vec<Box<dyn AppModel>> = vec![Box::new(PanickingApp)];
        apps.extend(registry::detailed().into_iter().take(3));

        let summary = health_sweep(2).run(&db, apps).unwrap();
        assert_eq!(summary.analyzed, 3, "healthy apps still measured");
        assert_eq!(summary.failures.len(), 1);
        let failure = &summary.failures[0];
        assert_eq!(failure.app, "panicking-app", "failure names the app");
        assert!(
            failure.error.contains("deliberate model bug"),
            "panic message surfaced: {}",
            failure.error
        );
        assert!(
            !db.contains("panicking-app", Workload::HealthCheck),
            "nothing persisted for the panicked app"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restricted_env_report_is_not_served_as_a_cached_baseline() {
        // Regression for the (app, workload)-only cache key: a report
        // measured under ExecEnv::Restricted stored in the same database
        // must not satisfy the sweep's skip-if-cached check (nor
        // `cmd_plan`'s identical `Database::load`) for the Linux
        // baseline of the same (app, workload).
        use loupe_kernel::KernelProfile;
        use loupe_syscalls::SysnoSet;

        let dir = tmpdir("env-cache");
        let db = Database::open(&dir).unwrap();
        let app = || -> Vec<_> { registry::detailed().into_iter().take(1).collect() };
        let name = app()[0].name().to_owned();

        // Measure once on a restricted kernel exposing the full surface
        // (so the baseline passes) and persist the report.
        let full: SysnoSet = loupe_syscalls::Sysno::all().collect();
        let restricted = Sweep::new(SweepConfig {
            workloads: vec![Workload::HealthCheck],
            workers: 1,
            analysis: AnalysisConfig {
                exec_env: loupe_core::ExecEnv::Restricted(KernelProfile::new("mid-plan", full)),
                ..AnalysisConfig::fast()
            },
            ..SweepConfig::default()
        })
        .run(&db, app())
        .unwrap();
        assert_eq!(restricted.analyzed, 1);
        assert_eq!(restricted.reports[0].env, "mid-plan");

        // A Linux sweep over the same (app, workload) must re-measure:
        // the restricted entry is not a Linux baseline.
        let linux = health_sweep(1).run(&db, app()).unwrap();
        assert_eq!(
            linux.analyzed, 1,
            "restricted-env entry must not be a cache hit"
        );
        assert_eq!(linux.cached, 0);
        assert_eq!(linux.reports[0].env, "linux");
        // Both measurements coexist under their own namespaces.
        assert!(db.load(&name, Workload::HealthCheck).unwrap().is_some());
        assert!(db
            .load_env("mid-plan", &name, Workload::HealthCheck)
            .unwrap()
            .is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transfer_sweep_with_empty_fleet_is_empty() {
        // An out-of-range shard yields zero apps; the transfer path must
        // return an empty summary like the plain path, not panic on the
        // seed clamp.
        let dir = tmpdir("transfer-empty");
        let db = Database::open(&dir).unwrap();
        let summary = Sweep::new(SweepConfig {
            workloads: vec![Workload::HealthCheck],
            transfer: Some(TransferConfig::default()),
            ..SweepConfig::default()
        })
        .run(&db, Vec::new())
        .unwrap();
        assert!(summary.reports.is_empty());
        assert_eq!(summary.analyzed + summary.cached, 0);
        assert!(summary.failures.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transfer_sweep_preserves_classes_and_saves_runs() {
        // The §6 two-pass mode must be an *optimisation*, never a result
        // change: hinted analyses produce the same classes, conflicts and
        // confirmation as full measurement, while skipping runs.
        let dir_full = tmpdir("transfer-full");
        let dir_hint = tmpdir("transfer-hint");
        let db_full = Database::open(&dir_full).unwrap();
        let db_hint = Database::open(&dir_hint).unwrap();

        let full = health_sweep(0).run(&db_full, registry::dataset()).unwrap();
        // The hinted sweep also runs the per-app probe scheduler in
        // parallel (`jobs > 1`) — neither axis may change results.
        let hinted = Sweep::new(SweepConfig {
            workloads: vec![Workload::HealthCheck],
            transfer: Some(TransferConfig::default()),
            analysis: AnalysisConfig {
                jobs: 4,
                ..AnalysisConfig::fast()
            },
            ..SweepConfig::default()
        })
        .run(&db_hint, registry::dataset())
        .unwrap();

        assert_eq!(full.reports.len(), hinted.reports.len());
        for (f, h) in full.reports.iter().zip(&hinted.reports) {
            assert_eq!(f.app, h.app);
            assert_eq!(f.classes, h.classes, "classes drifted for {}", f.app);
            assert_eq!(f.conflicts, h.conflicts, "conflicts drifted for {}", f.app);
            assert_eq!(
                f.confirmed, h.confirmed,
                "confirmation drifted for {}",
                f.app
            );
        }
        assert!(hinted.runs.transfer_skips > 0, "{:?}", hinted.runs);
        assert_eq!(
            hinted.runs.saved_runs,
            2 * hinted.runs.transfer_skips * u64::from(hinted.runs.replicas)
        );
        assert!(
            hinted.runs.feature_runs < full.runs.feature_runs,
            "hinted {} !< full {}",
            hinted.runs.feature_runs,
            full.runs.feature_runs
        );
        std::fs::remove_dir_all(&dir_full).ok();
        std::fs::remove_dir_all(&dir_hint).ok();
    }

    #[test]
    fn aggregate_counts_are_consistent() {
        let dir = tmpdir("agg");
        let db = Database::open(&dir).unwrap();
        let summary = health_sweep(0).run(&db, registry::detailed()).unwrap();
        let stats = FleetStats::aggregate(Workload::HealthCheck, &summary.reports);
        assert_eq!(stats.apps, 12);
        assert!(!stats.rows.is_empty());
        for row in &stats.rows {
            assert!(row.apps_using <= stats.apps);
            assert!(row.apps_requiring <= row.apps_using);
            // A syscall cannot be both required and (stub|fake)-able for
            // the same app, so the counts partition the users.
            assert!(row.apps_requiring + row.apps_stubbable <= row.apps_using);
        }
        assert_eq!(
            stats.required_anywhere() + stats.avoidable_everywhere(),
            stats.rows.len()
        );
        // The paper's core claim at fleet scale: far fewer syscalls are
        // required than traced.
        assert!(stats.required_anywhere() < stats.rows.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
