//! Markdown rendering of a sweep database: the checked-in
//! `docs/COMPATIBILITY.md` support matrix, per-app pages, and the drift
//! check that keeps them honest in CI.
//!
//! Everything rendered here is a pure function of the database contents
//! (no timestamps, no environment), so the same measurements always
//! produce byte-identical documents — the property the `--check` mode
//! and the determinism tests rely on.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use loupe_apps::Workload;
use loupe_core::AppReport;
use loupe_db::{Database, DbError};
use loupe_gentests::{CaseExpectation, ConformanceSuite};
use loupe_plan::{os, MatrixCell, PlanValidation, SupportPlan, Tier};
use loupe_syscalls::SysnoSet;

use crate::{matrix, FleetStats};

/// Error margin for "notable" stub/fake impact annotations (Table 2).
const IMPACT_EPSILON: f64 = 0.03;

/// A rendered documentation set: relative path → file contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RenderedDocs {
    /// `(relative path, contents)`, sorted by path.
    pub files: Vec<(PathBuf, String)>,
}

/// One file-level difference found by [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Drift {
    /// The file is missing on disk.
    Missing(PathBuf),
    /// The on-disk contents differ from the database rendering.
    Stale(PathBuf),
    /// A generated page exists on disk but the database no longer
    /// renders it (e.g. an app was removed from the fleet).
    Orphaned(PathBuf),
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Drift::Missing(p) => write!(f, "missing: {}", p.display()),
            Drift::Stale(p) => write!(f, "stale: {}", p.display()),
            Drift::Orphaned(p) => write!(f, "orphaned: {}", p.display()),
        }
    }
}

/// On-disk generated pages under `docs_dir` (relative paths) that the
/// database no longer renders — the single definition of "orphaned"
/// shared by [`write`] (which prunes them) and [`check`] (which flags
/// them).
fn orphaned_pages(rendered: &RenderedDocs, docs_dir: &Path) -> Vec<PathBuf> {
    let mut orphans = Vec::new();
    if let Ok(entries) = std::fs::read_dir(docs_dir.join("apps")) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.ends_with(".md") {
                continue;
            }
            let rel = PathBuf::from("apps").join(name);
            if !rendered.files.iter().any(|(r, _)| *r == rel) {
                orphans.push(rel);
            }
        }
    }
    orphans.sort();
    orphans
}

/// Loads every stored report, grouped by workload (sorted by app name).
///
/// # Errors
///
/// Database I/O and corruption errors.
pub fn reports_by_workload(db: &Database) -> Result<BTreeMap<Workload, Vec<AppReport>>, DbError> {
    let mut grouped = BTreeMap::new();
    for &workload in Workload::ALL {
        let reports = db.load_workload(workload)?;
        if !reports.is_empty() {
            grouped.insert(workload, reports);
        }
    }
    Ok(grouped)
}

/// Renders the full documentation set for a database: `COMPATIBILITY.md`
/// plus one page per app under `apps/`, `SUPPORT_PLANS.md`, and — when
/// the database holds static reports — the `STATIC_VS_DYNAMIC.md`
/// comparison (Figs. 4–7).
///
/// # Errors
///
/// Database I/O and corruption errors, including a partially-populated
/// static namespace (some apps analysed, others not).
pub fn render(db: &Database) -> Result<RenderedDocs, DbError> {
    let grouped = reports_by_workload(db)?;
    let mut validations = BTreeMap::new();
    for (os_name, workload) in db.list_plan_validations()? {
        if let Some(v) = db.load_plan_validation(&os_name, workload)? {
            validations.insert((workload, os_name), v);
        }
    }
    let has_statics = !db.list_static()?.is_empty();
    let cells = db.load_matrix()?;
    let mut files = vec![
        (
            PathBuf::from("COMPATIBILITY.md"),
            render_matrix(&grouped, has_statics),
        ),
        (
            PathBuf::from("SUPPORT_PLANS.md"),
            render_support_plans(&grouped, &validations, !cells.is_empty()),
        ),
    ];
    if !cells.is_empty() {
        files.push((PathBuf::from("OS_MATRIX.md"), render_os_matrix(&cells)));
    }
    let suites = db.load_suites()?;
    if !suites.is_empty() {
        files.push((PathBuf::from("CONFORMANCE.md"), render_conformance(&suites)));
    }
    if has_statics {
        let comparisons = crate::statics::compare(db).map_err(|e| match e {
            crate::statics::CompareError::Db(db_err) => db_err,
            other => DbError::Io(std::io::Error::other(other.to_string())),
        })?;
        files.push((
            PathBuf::from("STATIC_VS_DYNAMIC.md"),
            crate::statics::render_static_comparison(&comparisons),
        ));
    }

    let mut by_app: BTreeMap<&str, Vec<&AppReport>> = BTreeMap::new();
    for reports in grouped.values() {
        for report in reports {
            by_app.entry(report.app.as_str()).or_default().push(report);
        }
    }
    for (app, reports) in &by_app {
        files.push((
            PathBuf::from(format!("apps/{app}.md")),
            render_app_page(app, reports),
        ));
    }
    files.push((PathBuf::from("apps/README.md"), render_app_index(&by_app)));
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(RenderedDocs { files })
}

/// Writes the rendered set under `docs_dir`, returning the paths written.
///
/// # Errors
///
/// Database and filesystem errors.
pub fn write(db: &Database, docs_dir: &Path) -> Result<Vec<PathBuf>, DbError> {
    let rendered = render(db)?;
    for (rel, contents) in &rendered.files {
        let path = docs_dir.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, contents)?;
    }
    // Prune generated pages whose app is no longer in the database.
    for rel in orphaned_pages(&rendered, docs_dir) {
        std::fs::remove_file(docs_dir.join(&rel))?;
    }
    Ok(rendered
        .files
        .iter()
        .map(|(rel, _)| docs_dir.join(rel))
        .collect())
}

/// Compares the rendered set against what is on disk under `docs_dir`.
/// An empty result means the checked-in docs match the database.
///
/// # Errors
///
/// Database I/O and corruption errors (missing/stale files are *drift*,
/// not errors).
pub fn check(db: &Database, docs_dir: &Path) -> Result<Vec<Drift>, DbError> {
    let rendered = render(db)?;
    let mut drift = Vec::new();
    for (rel, contents) in &rendered.files {
        let path = docs_dir.join(rel);
        match std::fs::read_to_string(&path) {
            Ok(on_disk) if on_disk == *contents => {}
            Ok(_) => drift.push(Drift::Stale(rel.clone())),
            Err(_) => drift.push(Drift::Missing(rel.clone())),
        }
    }
    for rel in orphaned_pages(&rendered, docs_dir) {
        drift.push(Drift::Orphaned(rel));
    }
    Ok(drift)
}

fn workload_title(w: Workload) -> &'static str {
    match w {
        Workload::HealthCheck => "health-check",
        Workload::Benchmark => "benchmark",
        Workload::TestSuite => "test-suite",
    }
}

/// Renders the fleet-wide compatibility matrix. `link_statics` adds the
/// cross-link to `STATIC_VS_DYNAMIC.md`, which only exists when the
/// database holds static reports (a sweep ran with `--static`).
pub fn render_matrix(grouped: &BTreeMap<Workload, Vec<AppReport>>, link_statics: bool) -> String {
    let mut out = String::new();
    out.push_str("# Syscall compatibility matrix\n\n");
    out.push_str(
        "Generated by `loupe report` from a sweep database — **do not edit by\n\
         hand**. Regenerate with:\n\n\
         ```sh\n\
         cargo run --release -p loupe-cli -- sweep --db target/loupedb --workload all --jobs 2 --transfer --static --validate-plans\n\
         cargo run --release -p loupe-cli -- report --db target/loupedb --docs docs\n\
         ```\n\n\
         For every system call the fleet exercises, the matrix shows how many\n\
         applications traced it and for how many it must be **implemented**,\n\
         can be **stubbed** (return `-ENOSYS`), or can be **faked** (return\n\
         success without doing the work) — the paper's §3 classification,\n\
         aggregated over the population. *Advice* is the cheapest strategy\n\
         that satisfies every app using the call.\n\n",
    );

    for (&workload, reports) in grouped {
        let stats = FleetStats::aggregate(workload, reports);
        let _ = writeln!(
            out,
            "## {} workload — {} applications\n",
            workload_title(workload),
            stats.apps
        );
        let _ = writeln!(
            out,
            "{} distinct syscalls traced fleet-wide; **{} must be implemented**\n\
             somewhere in the fleet, {} are avoidable everywhere.\n",
            stats.rows.len(),
            stats.required_anywhere(),
            stats.avoidable_everywhere()
        );
        out.push_str(
            "| # | Syscall | Category | Used by | Requires impl | Stubbable | Fakeable | Advice |\n\
             |--:|---------|----------|--------:|--------------:|----------:|---------:|--------|\n",
        );
        for row in &stats.rows {
            let _ = writeln!(
                out,
                "| {} | `{}` | {} | {} | {} ({:.0}%) | {} | {} | {} |",
                row.sysno.raw(),
                row.sysno.name(),
                row.category.label(),
                row.apps_using,
                row.apps_requiring,
                row.importance * 100.0,
                row.apps_stubbable,
                row.apps_fakeable,
                row.advice()
            );
        }
        out.push('\n');

        render_plan_rollup(&mut out, &stats);
        render_impact_rollup(&mut out, reports);
        render_cost_rollup(&mut out, reports);
    }

    if link_statics {
        out.push_str(
            "---\n\nPer-application breakdowns live in [`apps/`](apps/README.md); the\n\
             static-analysis baselines are contrasted against these dynamic\n\
             measurements in [STATIC_VS_DYNAMIC.md](STATIC_VS_DYNAMIC.md).\n",
        );
    } else {
        out.push_str("---\n\nPer-application breakdowns live in [`apps/`](apps/README.md).\n");
    }
    out
}

/// How one (OS, workload) plan relates to its stored validation.
enum PlanStatus<'a> {
    /// No validation stored: the plan is a prediction only.
    Predicted,
    /// A validation is stored but was produced from a *different* plan
    /// (measurements moved since): its verdicts no longer apply.
    Stale,
    /// The stored validation matches this plan.
    Validated(&'a PlanValidation),
}

/// Renders the fleet × OS empirical compatibility matrix
/// (`OS_MATRIX.md`): the §5/Table 1 analogue at production scale, one
/// row per OS and workload with "works out of the box" vs "works with
/// plan" rates, plus per-OS failure causes straight from the restricted
/// kernel's boundary counters.
pub fn render_os_matrix(cells: &[MatrixCell]) -> String {
    let sizes = matrix::os_sizes(&os::db());
    let stats = matrix::aggregate(cells, &sizes);
    let mut out = String::new();
    out.push_str("# Fleet × OS empirical compatibility matrix\n\n");
    out.push_str(
        "Generated by `loupe report` from a sweep database — **do not edit by\n\
         hand**. Regenerate with:\n\n\
         ```sh\n\
         cargo run --release -p loupe-cli -- sweep --db target/loupedb --workload all --jobs 2 --all-os\n\
         cargo run --release -p loupe-cli -- report --db target/loupedb --docs docs\n\
         ```\n\n\
         Unlike [SUPPORT_PLANS.md](SUPPORT_PLANS.md) — which *derives* what each\n\
         OS is missing — every cell here was **executed**: the application's\n\
         workload ran on a restricted kernel exposing exactly the OS's syscall\n\
         surface. *Out of the box* is the vanilla tier (unimplemented syscalls\n\
         answer `-ENOSYS`); *with plan* additionally applies the support plan's\n\
         stub/fake guidance for the app — no new syscalls implemented, so the\n\
         delta is pure cheap-remediation gain. Apps are only credited against\n\
         their stored full-Linux baseline; *top missing* ranks the required\n\
         syscalls the OS lacks by how many still-blocked apps need them.\n\n",
    );

    // One table per workload, one row per OS (most-capable first).
    let mut workloads: Vec<Workload> = stats.iter().map(|r| r.workload).collect();
    workloads.sort_by_key(|w| w.label());
    workloads.dedup();
    for workload in workloads {
        let mut rows: Vec<&matrix::OsWorkloadStats> =
            stats.iter().filter(|r| r.workload == workload).collect();
        rows.sort_by(|a, b| {
            b.planned_pass
                .cmp(&a.planned_pass)
                .then(b.vanilla_pass.cmp(&a.vanilla_pass))
                .then(a.os.cmp(&b.os))
        });
        let apps = rows.iter().map(|r| r.apps).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "## {} workload — {} applications\n",
            workload_title(workload),
            apps
        );
        out.push_str(
            "| OS | Syscalls | Out of the box | With plan | Plan gain | Full Linux | Top missing syscalls |\n\
             |----|---------:|---------------:|----------:|----------:|-----------:|----------------------|\n",
        );
        for row in rows {
            let top: Vec<String> = row
                .top_missing
                .iter()
                .take(4)
                .map(|(s, n)| format!("`{}` ({n})", s.name()))
                .collect();
            let _ = writeln!(
                out,
                "| [{}](#{}) | {} | {}/{} ({:.0}%) | {}/{} ({:.0}%) | +{} | {} | {} |",
                row.os,
                row.os,
                row.syscalls,
                row.vanilla_pass,
                row.apps,
                row.vanilla_rate() * 100.0,
                row.planned_pass,
                row.apps,
                row.planned_rate() * 100.0,
                row.plan_gain(),
                row.linux_pass,
                if top.is_empty() {
                    "–".to_owned()
                } else {
                    top.join(", ")
                }
            );
        }
        out.push('\n');
    }

    // Per-OS failure causes: blocked apps grouped by the first syscall
    // the restricted kernel rejected (the empirical cause), with the
    // analytical missing-required count alongside.
    out.push_str("## Per-OS failure causes\n\n");
    out.push_str(
        "For every OS, the apps still blocked *with the plan applied*, grouped\n\
         by the first syscall the restricted kernel rejected during the run.\n\n",
    );
    let mut os_names: Vec<&str> = cells.iter().map(|c| c.os.as_str()).collect();
    os_names.sort_unstable();
    os_names.dedup();
    for os_name in os_names {
        let _ = writeln!(out, "### {os_name}\n");
        let mut wrote_any = false;
        let mut os_workloads: Vec<Workload> = cells
            .iter()
            .filter(|c| c.os == os_name)
            .map(|c| c.workload)
            .collect();
        os_workloads.sort_by_key(|w| w.label());
        os_workloads.dedup();
        for workload in os_workloads {
            // first rejected syscall → blocked app names.
            let mut causes: BTreeMap<String, Vec<&str>> = BTreeMap::new();
            for cell in cells
                .iter()
                .filter(|c| c.os == os_name && c.workload == workload)
            {
                if cell.planned_at_least() {
                    continue;
                }
                let tier = cell.planned.as_ref().or(cell.vanilla.as_ref());
                let cause = match tier.and_then(|t| t.first_cause()) {
                    Some(s) => format!("`{s}`"),
                    None if !cell.linux_pass => "fails on full Linux".to_owned(),
                    None => "no rejection observed".to_owned(),
                };
                causes.entry(cause).or_default().push(cell.app.as_str());
            }
            if causes.is_empty() {
                continue;
            }
            if !wrote_any {
                out.push_str(
                    "| Workload | First rejected feature | Apps blocked | Examples |\n\
                     |----------|------------------------|-------------:|----------|\n",
                );
                wrote_any = true;
            }
            let mut rows: Vec<(String, Vec<&str>)> = causes.into_iter().collect();
            rows.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
            for (cause, apps) in rows {
                let examples: Vec<&str> = apps.iter().take(4).copied().collect();
                let more = apps.len().saturating_sub(examples.len());
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {}{} |",
                    workload_title(workload),
                    cause,
                    apps.len(),
                    examples.join(", "),
                    if more > 0 {
                        format!(", … (+{more})")
                    } else {
                        String::new()
                    }
                );
            }
        }
        if wrote_any {
            out.push('\n');
        } else {
            out.push_str("Every measured app runs with the plan applied.\n\n");
        }
    }

    out.push_str(
        "---\n\nPlan derivations live in [SUPPORT_PLANS.md](SUPPORT_PLANS.md); fleet-wide\n\
         classifications in [COMPATIBILITY.md](COMPATIBILITY.md).\n",
    );
    out
}

/// Renders `CONFORMANCE.md`: the generated conformance-suite summary —
/// suite sizes, per-tier executed verdicts, and agreement with the
/// empirical matrix verdicts each suite carries.
pub fn render_conformance(suites: &[ConformanceSuite]) -> String {
    let mut out = String::new();
    out.push_str("# Generated conformance suites\n\n");
    out.push_str(
        "Generated by `loupe report` from a sweep database — **do not edit by\n\
         hand**. Regenerate with:\n\n\
         ```sh\n\
         cargo run --release -p loupe-cli -- gentests --db target/loupedb --all-os --workload all --jobs 2\n\
         cargo run --release -p loupe-cli -- report --db target/loupedb --docs docs\n\
         ```\n\n\
         `loupe gentests` compiles each application's measurement corpus —\n\
         baseline trace, stub/fake classifications, fallback requirements and\n\
         impact data — into an *executable* conformance suite: an ordered,\n\
         minimal sequence of syscall cases a compatibility layer can run\n\
         against its own kernel (`gentests/<os>/<workload>/<app>.json` in the\n\
         database). *Implement* cases demand a real implementation; *fake*\n\
         cases accept a success shim; measured-stubbable syscalls carry no\n\
         case at all — `-ENOSYS` is tolerated there by construction. Every\n\
         suite is executed against its OS's vanilla and planned kernel\n\
         profiles; *matrix agreement* counts the suites whose verdicts\n\
         reproduce the [OS_MATRIX.md](OS_MATRIX.md) cell verdicts exactly —\n\
         the generator, the matrix sweep and the planner cross-validating\n\
         each other.\n\n",
    );

    // One table per workload, one row per OS (most suites passing first).
    struct Row {
        os: String,
        suites: usize,
        cases: usize,
        fake_cases: usize,
        vanilla_pass: usize,
        planned_pass: usize,
        agree: usize,
        expected: usize,
    }
    let mut workloads: Vec<Workload> = suites.iter().map(|s| s.workload).collect();
    workloads.sort_by_key(|w| w.label());
    workloads.dedup();
    for workload in workloads {
        let mut rows: BTreeMap<&str, Row> = BTreeMap::new();
        for suite in suites.iter().filter(|s| s.workload == workload) {
            let Some(spec) = os::find(&suite.os) else {
                continue;
            };
            let row = rows.entry(suite.os.as_str()).or_insert_with(|| Row {
                os: suite.os.clone(),
                suites: 0,
                cases: 0,
                fake_cases: 0,
                vanilla_pass: 0,
                planned_pass: 0,
                agree: 0,
                expected: 0,
            });
            row.suites += 1;
            row.cases += suite.cases.len();
            row.fake_cases += suite
                .cases
                .iter()
                .filter(|c| c.expectation == CaseExpectation::ImplementedOrFaked)
                .count();
            row.vanilla_pass += usize::from(suite.verdict(&spec, Tier::Vanilla));
            row.planned_pass += usize::from(suite.verdict(&spec, Tier::Planned));
            let has_expectation =
                suite.expected.vanilla.is_some() || suite.expected.planned.is_some();
            if has_expectation {
                row.expected += 1;
                row.agree += usize::from(suite.disagreements(&spec).is_empty());
            }
        }
        let mut rows: Vec<Row> = rows.into_values().collect();
        rows.sort_by(|a, b| {
            b.planned_pass
                .cmp(&a.planned_pass)
                .then(b.vanilla_pass.cmp(&a.vanilla_pass))
                .then(a.os.cmp(&b.os))
        });
        let apps = rows.iter().map(|r| r.suites).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "## {} workload — {} suites per OS\n",
            workload_title(workload),
            apps
        );
        out.push_str(
            "| OS | Suites | Cases | Fake-tolerance cases | Out of the box | With plan | Matrix agreement |\n\
             |----|-------:|------:|---------------------:|---------------:|----------:|-----------------:|\n",
        );
        for row in rows {
            let _ = writeln!(
                out,
                "| [{}](OS_MATRIX.md#{}) | {} | {} | {} | {}/{} | {}/{} | {}/{} |",
                row.os,
                row.os,
                row.suites,
                row.cases,
                row.fake_cases,
                row.vanilla_pass,
                row.suites,
                row.planned_pass,
                row.suites,
                row.agree,
                row.expected,
            );
        }
        out.push('\n');
    }

    // Suite shape: the apps with the largest implement-surface, per
    // workload — "what a compat layer signs up for".
    out.push_str("## Largest suites\n\n");
    out.push_str(
        "Cases are identical across OSes for a given `(app, workload)` — the\n\
         corpus determines the suite; the OS only determines the verdict. The\n\
         heaviest conformance obligations in the fleet:\n\n",
    );
    out.push_str(
        "| App | Workload | Cases | Must implement | May fake | Tolerated stubs |\n\
         |-----|----------|------:|---------------:|---------:|----------------:|\n",
    );
    let mut shapes: BTreeMap<(&str, &'static str), &ConformanceSuite> = BTreeMap::new();
    for suite in suites {
        shapes
            .entry((suite.app.as_str(), suite.workload.label()))
            .or_insert(suite);
    }
    let mut shapes: Vec<&ConformanceSuite> = shapes.into_values().collect();
    shapes.sort_by(|a, b| {
        b.cases
            .len()
            .cmp(&a.cases.len())
            .then(a.app.cmp(&b.app))
            .then(a.workload.label().cmp(b.workload.label()))
    });
    for suite in shapes.into_iter().take(10) {
        let _ = writeln!(
            out,
            "| [{}](apps/{}.md) | {} | {} | {} | {} | {} |",
            suite.app,
            suite.app,
            workload_title(suite.workload),
            suite.cases.len(),
            suite.must_implement().len(),
            suite.may_fake().len(),
            suite.tolerated_stubs.len(),
        );
    }
    out.push('\n');

    out.push_str(
        "---\n\nEmpirical cell verdicts live in [OS_MATRIX.md](OS_MATRIX.md); plan\n\
         derivations in [SUPPORT_PLANS.md](SUPPORT_PLANS.md); fleet-wide\n\
         classifications in [COMPATIBILITY.md](COMPATIBILITY.md).\n",
    );
    out
}

/// Renders `SUPPORT_PLANS.md`: the per-OS Table 1 analogue, with each
/// step's empirical verdict when a matching validation is stored.
/// `link_matrix` adds per-OS cross-links into `OS_MATRIX.md`, which
/// only exists when the database holds matrix cells (a sweep ran with
/// `--all-os`/`--os`).
pub fn render_support_plans(
    grouped: &BTreeMap<Workload, Vec<AppReport>>,
    validations: &BTreeMap<(Workload, String), PlanValidation>,
    link_matrix: bool,
) -> String {
    let mut out = String::new();
    out.push_str("# Incremental support plans\n\n");
    out.push_str(
        "Generated by `loupe report` from a sweep database — **do not edit by\n\
         hand**. Regenerate (and re-validate) with:\n\n\
         ```sh\n\
         cargo run --release -p loupe-cli -- sweep --db target/loupedb --workload all --jobs 2 --transfer --static --validate-plans\n\
         cargo run --release -p loupe-cli -- report --db target/loupedb --docs docs\n\
         ```\n\n\
         For every curated OS (§4.1), the ordered steps that unlock the\n\
         measured fleet: implement the *Implement* column for real, answer the\n\
         *Stub* column with `-ENOSYS`, shim the *Fake* column with success\n\
         values. *Verdict* is **empirical** where a stored validation matches\n\
         the plan: the unlocked app's workload was replayed on a restricted\n\
         kernel exposing exactly the step's cumulative syscall surface, and\n\
         must pass there. Each step is also replayed one step earlier:\n\
         failing there proves the step *tight*; passing there is an *early\n\
         unlock* — the planner over-estimated, because a \"required\"\n\
         syscall can hide behind a code path that other stubbed features\n\
         disable. Steps adding no kernel behaviour (stub-only) are *free*:\n\
         unimplemented already answers `-ENOSYS`.\n\n",
    );

    for (&workload, reports) in grouped {
        let stats = FleetStats::aggregate(workload, reports);
        let _ = writeln!(
            out,
            "## {} workload — {} applications\n",
            workload_title(workload),
            stats.apps
        );

        // Per-OS overview, then the step-by-step tables.
        if link_matrix {
            out.push_str(
                "| OS | Supported today | Apps working now | Plan steps | Features to implement | Steps needing ≤3 | Validation | Empirical matrix |\n\
                 |----|----------------:|-----------------:|-----------:|----------------------:|------------------:|------------|------------------|\n",
            );
        } else {
            out.push_str(
                "| OS | Supported today | Apps working now | Plan steps | Features to implement | Steps needing ≤3 | Validation |\n\
                 |----|----------------:|-----------------:|-----------:|----------------------:|------------------:|------------|\n",
            );
        }
        let planned: Vec<(loupe_plan::OsSpec, SupportPlan, PlanStatus)> = os::db()
            .into_iter()
            .map(|spec| {
                let plan = SupportPlan::generate(&spec, &stats.requirements);
                let status = plan_status(workload, &plan, validations);
                (spec, plan, status)
            })
            .collect();
        for (spec, plan, status) in &planned {
            let _ = write!(
                out,
                "| [{}](#{}-{}-workload) | {} | {} | {} | {} | {:.0}% | {} |",
                spec.name,
                spec.name,
                workload_title(workload),
                spec.supported.len(),
                plan.initially_supported.len(),
                plan.steps.len(),
                plan.total_implemented() + plan.total_implemented_flags(),
                plan.small_step_fraction(3) * 100.0,
                match status {
                    PlanStatus::Predicted => "predicted".to_owned(),
                    PlanStatus::Stale => "stale (re-run `--validate-plans`)".to_owned(),
                    PlanStatus::Validated(v) =>
                        if !v.is_valid() {
                            format!("**INVALID** ({} failing steps)", v.failing_steps().len())
                        } else if v.is_tight() {
                            "**validated**".to_owned()
                        } else {
                            format!("**validated**, {} early unlocks", v.early_steps().len())
                        },
                }
            );
            if link_matrix {
                let _ = write!(out, " [pass rates](OS_MATRIX.md#{}) |", spec.name);
            }
            out.push('\n');
        }
        out.push('\n');

        for (_, plan, status) in &planned {
            render_one_plan(&mut out, workload, plan, status);
        }
    }

    out.push_str(
        "---\n\nFleet-wide classifications live in [COMPATIBILITY.md](COMPATIBILITY.md).\n",
    );
    out
}

fn plan_status<'a>(
    workload: Workload,
    plan: &SupportPlan,
    validations: &'a BTreeMap<(Workload, String), PlanValidation>,
) -> PlanStatus<'a> {
    match validations.get(&(workload, plan.os.clone())) {
        None => PlanStatus::Predicted,
        Some(v) if &v.plan == plan => PlanStatus::Validated(v),
        Some(_) => PlanStatus::Stale,
    }
}

/// Renders one column of plan work: whole syscalls plus flag-granular
/// sub-features (`fcntl:F_SETLK`) in the same cell, elided past 6 items.
fn fmt_work(set: &SysnoSet, flags: &[loupe_syscalls::SubFeatureKey]) -> String {
    let total = set.len() + flags.len();
    if total == 0 {
        "–".to_owned()
    } else if total > 6 {
        format!("({total} items)")
    } else {
        set.iter()
            .map(|s| format!("`{}`", s.name()))
            .chain(flags.iter().map(|k| format!("`{k}`")))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

fn render_one_plan(out: &mut String, workload: Workload, plan: &SupportPlan, status: &PlanStatus) {
    let _ = writeln!(
        out,
        "### {} ({} workload)\n",
        plan.os,
        workload_title(workload)
    );
    let initial_verdict = match status {
        PlanStatus::Validated(v) => {
            let failing: Vec<&str> = v
                .initial
                .iter()
                .filter(|iv| !iv.passes)
                .map(|iv| iv.app.as_str())
                .collect();
            if failing.is_empty() {
                " — all verified to run with zero work".to_owned()
            } else {
                format!(
                    " — **{} fail despite being listed**: {}",
                    failing.len(),
                    failing.join(", ")
                )
            }
        }
        _ => String::new(),
    };
    let _ = writeln!(
        out,
        "{} applications run before any work{initial_verdict}.\n",
        plan.initially_supported.len()
    );
    if plan.steps.is_empty() {
        out.push_str("No steps needed.\n\n");
        return;
    }
    out.push_str(
        "| Step | Implement | Stub | Fake | Support for… | Verdict |\n\
         |-----:|-----------|------|------|--------------|---------|\n",
    );
    for step in &plan.steps {
        let verdict = match status {
            PlanStatus::Predicted => "predicted".to_owned(),
            PlanStatus::Stale => "stale".to_owned(),
            PlanStatus::Validated(v) => match v.steps.iter().find(|s| s.index == step.index) {
                None => "missing verdict".to_owned(),
                Some(s) => {
                    let mut parts = Vec::new();
                    parts.push(if s.unlocked {
                        "✓ unlocks"
                    } else {
                        "**✗ still fails**"
                    });
                    parts.push(match s.locked_before {
                        None => "free step",
                        Some(true) => "tight",
                        Some(false) => "⚠ unlocked early",
                    });
                    parts.join(", ")
                }
            },
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | + {} | {} |",
            step.index,
            fmt_work(&step.implement, &step.implement_flags),
            fmt_work(&step.stub, &step.stub_flags),
            fmt_work(&step.fake, &step.fake_flags),
            step.unlocks,
            verdict
        );
    }
    out.push('\n');
}

/// Table 1-style rollup: how much work each curated OS needs to support
/// the measured fleet.
fn render_plan_rollup(out: &mut String, stats: &FleetStats) {
    out.push_str("### Support-plan rollup (curated OS specs)\n\n");
    out.push_str(
        "| OS | Supported today | Apps working now | Plan steps | Features to implement | Steps needing ≤3 |\n\
         |----|----------------:|-----------------:|-----------:|----------------------:|------------------:|\n",
    );
    for spec in os::db() {
        let plan = SupportPlan::generate(&spec, &stats.requirements);
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {:.0}% |",
            spec.name,
            spec.supported.len(),
            plan.initially_supported.len(),
            plan.steps.len(),
            plan.total_implemented() + plan.total_implemented_flags(),
            plan.small_step_fraction(3) * 100.0
        );
    }
    out.push('\n');
}

/// Table 2-style rollup: stub/fake runs that passed but moved a metric
/// beyond the error margin.
fn render_impact_rollup(out: &mut String, reports: &[AppReport]) {
    let mut rows = Vec::new();
    for report in reports {
        for (sysno, rec) in report.notable_impacts(IMPACT_EPSILON) {
            for (mode, impact) in [("stub", rec.stub), ("fake", rec.fake)] {
                if let Some(i) = impact {
                    if i.success && i.is_notable(IMPACT_EPSILON) {
                        rows.push((report.app.clone(), sysno, mode, i));
                    }
                }
            }
        }
    }
    if rows.is_empty() {
        return;
    }
    rows.sort_by(|a, b| (&a.0, a.1, a.2).cmp(&(&b.0, b.1, b.2)));
    out.push_str("### Notable stub/fake impacts (passes tests, metric moved >3%)\n\n");
    out.push_str(
        "| App | Syscall | Mode | Throughput | Peak RSS | Peak FDs |\n\
         |-----|---------|------|-----------:|---------:|---------:|\n",
    );
    let fmt_delta = |d: f64| {
        if d.abs() <= IMPACT_EPSILON {
            "–".to_owned()
        } else {
            format!("{:+.0}%", d * 100.0)
        }
    };
    for (app, sysno, mode, i) in rows {
        let _ = writeln!(
            out,
            "| {} | `{}` | {} | {} | {} | {} |",
            app,
            sysno.name(),
            mode,
            fmt_delta(i.perf_delta),
            fmt_delta(i.rss_delta),
            fmt_delta(i.fd_delta)
        );
    }
    out.push('\n');
}

/// §3.3-style cost rollup: how many application executions the stored
/// measurements took, and how many the §6 hint transfer saved.
fn render_cost_rollup(out: &mut String, reports: &[AppReport]) {
    let mut total = loupe_core::RunStats::default();
    for report in reports {
        total.absorb(&report.stats);
    }
    out.push_str("### Analysis cost (engine runs per app)\n\n");
    let _ = writeln!(
        out,
        "{} runs fleet-wide: {} framing, {} feature probes, {} bisection;\n\
         {} feature measurements were transfer-skipped (§6), saving {} runs.\n",
        total.total_runs(),
        total.framing_runs,
        total.feature_runs,
        total.bisect_runs,
        total.transfer_skips,
        total.saved_runs
    );
    out.push_str(
        "| App | Total runs | Framing | Feature | Bisect | Features tested | Transfer-skipped | Runs saved |\n\
         |-----|-----------:|--------:|--------:|-------:|----------------:|-----------------:|-----------:|\n",
    );
    for report in reports {
        let s = &report.stats;
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            report.app,
            s.total_runs(),
            s.framing_runs,
            s.feature_runs,
            s.bisect_runs,
            s.features_tested,
            s.transfer_skips,
            s.saved_runs
        );
    }
    out.push('\n');
}

/// Renders the index of per-app pages.
fn render_app_index(by_app: &BTreeMap<&str, Vec<&AppReport>>) -> String {
    let mut out = String::new();
    out.push_str("# Per-application reports\n\n");
    out.push_str("Generated by `loupe report` — do not edit by hand.\n\n");
    out.push_str("| App | Workloads | Traced | Required | Confirmed |\n");
    out.push_str("|-----|-----------|-------:|---------:|-----------|\n");
    for (app, reports) in by_app {
        let workloads: Vec<&str> = reports.iter().map(|r| r.workload.label()).collect();
        let traced: usize = reports.iter().map(|r| r.traced().len()).max().unwrap_or(0);
        let required: usize = reports
            .iter()
            .map(|r| r.required().len())
            .max()
            .unwrap_or(0);
        let confirmed = reports.iter().all(|r| r.confirmed);
        let _ = writeln!(
            out,
            "| [{app}]({app}.md) | {} | {traced} | {required} | {} |",
            workloads.join(", "),
            if confirmed { "yes" } else { "no" }
        );
    }
    out
}

/// Renders one application's page from all its stored workload reports.
pub fn render_app_page(app: &str, reports: &[&AppReport]) -> String {
    let mut out = String::new();
    let version = reports.first().map(|r| r.version.as_str()).unwrap_or("?");
    let _ = writeln!(out, "# {app} (version {version})\n");
    out.push_str("Generated by `loupe report` — do not edit by hand.\n");

    for report in reports {
        let _ = writeln!(out, "\n## {} workload\n", workload_title(report.workload));
        let _ = writeln!(
            out,
            "- traced: {} syscalls over {} engine runs\n\
             - required: {}, stubbable: {}, fakeable: {}\n\
             - combined stub/fake policy confirmed: {}",
            report.traced().len(),
            report.stats.total_runs(),
            report.required().len(),
            report.stubbable().len(),
            report.fakeable().len(),
            if report.confirmed { "yes" } else { "no" }
        );
        if report.stats.transfer_skips > 0 {
            let _ = writeln!(
                out,
                "- transfer-skipped: {} feature measurements ({} runs saved, §6)",
                report.stats.transfer_skips, report.stats.saved_runs
            );
        }
        if !report.conflicts.is_empty() {
            let names: Vec<&str> = report.conflicts.iter().map(|s| s.name()).collect();
            let _ = writeln!(
                out,
                "- conflict bisection re-marked as required: `{}`",
                names.join("`, `")
            );
        }
        if !report.fallbacks.is_empty() {
            let names: Vec<String> = report
                .fallbacks
                .iter()
                .map(|s| s.name().to_owned())
                .collect();
            let _ = writeln!(
                out,
                "- fallback requirements (untraced in baseline, exercised by the \
                 combined stub/fake policy): `{}`",
                names.join("`, `")
            );
        }

        out.push_str(
            "\n| Syscall | Calls | Classification |\n|---------|------:|----------------|\n",
        );
        for (sysno, count) in &report.traced {
            let class = report
                .classes
                .get(sysno)
                .map(|c| c.label())
                .unwrap_or("untested");
            let _ = writeln!(out, "| `{}` | {} | {} |", sysno.name(), count, class);
        }

        if !report.sub_features.is_empty() {
            out.push_str("\nSub-features of vectored syscalls:\n\n");
            out.push_str("| Sub-feature | Classification |\n|-------------|----------------|\n");
            for (key, class) in &report.sub_features {
                let _ = writeln!(out, "| `{key}` | {} |", class.label());
            }
        }
        if !report.pseudo_files.is_empty() {
            out.push_str("\nPseudo-file accesses:\n\n");
            out.push_str("| Path | Classification |\n|------|----------------|\n");
            for (path, class) in &report.pseudo_files {
                let _ = writeln!(out, "| `{path}` | {} |", class.label());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sweep, SweepConfig};
    use loupe_apps::registry;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("loupe-report-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn seeded_db(tag: &str, apps: usize) -> (PathBuf, Database) {
        let dir = tmpdir(tag);
        let db = Database::open(&dir).unwrap();
        let sweep = Sweep::new(SweepConfig {
            workloads: vec![Workload::HealthCheck],
            ..SweepConfig::default()
        });
        let fleet: Vec<_> = registry::detailed().into_iter().take(apps).collect();
        sweep.run(&db, fleet).unwrap();
        (dir, db)
    }

    #[test]
    fn rendering_is_deterministic() {
        let (dir, db) = seeded_db("det", 5);
        let a = render(&db).unwrap();
        let b = render(&db).unwrap();
        assert_eq!(a, b);
        assert!(a.files.iter().any(|(p, _)| p.ends_with("COMPATIBILITY.md")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn matrix_mentions_every_app_and_core_syscalls() {
        let (dir, db) = seeded_db("content", 3);
        let rendered = render(&db).unwrap();
        let matrix = &rendered
            .files
            .iter()
            .find(|(p, _)| p.ends_with("COMPATIBILITY.md"))
            .unwrap()
            .1;
        assert!(matrix.contains("| Syscall |"));
        assert!(matrix.contains("`mmap`"), "core syscalls appear");
        assert!(matrix.contains("3 applications"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_detects_missing_stale_and_clean_docs() {
        let (dir, db) = seeded_db("drift", 2);
        let docs = dir.join("docs");

        // Nothing written yet: everything is missing.
        let drift = check(&db, &docs).unwrap();
        assert!(!drift.is_empty());
        assert!(matches!(drift[0], Drift::Missing(_)));

        // After writing, the check is clean.
        write(&db, &docs).unwrap();
        assert!(check(&db, &docs).unwrap().is_empty());

        // Tampering makes it stale.
        let matrix = docs.join("COMPATIBILITY.md");
        std::fs::write(&matrix, "tampered").unwrap();
        let drift = check(&db, &docs).unwrap();
        assert!(drift
            .iter()
            .any(|d| matches!(d, Drift::Stale(p) if p.ends_with("COMPATIBILITY.md"))));

        // A generated page whose app left the database is orphaned —
        // flagged by check() and pruned by the next write().
        let ghost = docs.join("apps/ghost.md");
        std::fs::write(&ghost, "left behind").unwrap();
        let drift = check(&db, &docs).unwrap();
        assert!(drift
            .iter()
            .any(|d| matches!(d, Drift::Orphaned(p) if p.ends_with("ghost.md"))));
        write(&db, &docs).unwrap();
        assert!(!ghost.exists(), "write() prunes orphaned pages");
        assert!(check(&db, &docs).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn support_plans_render_predicted_then_validated() {
        let (dir, db) = seeded_db("plans", 4);
        let rendered = render(&db).unwrap();
        let plans = &rendered
            .files
            .iter()
            .find(|(p, _)| p.ends_with("SUPPORT_PLANS.md"))
            .unwrap()
            .1;
        assert!(plans.contains("kerla"), "every curated OS appears");
        assert!(
            plans.contains("predicted") && !plans.contains("✓ unlocks"),
            "no validations stored yet: predictions only"
        );

        crate::plans::validate_curated_plans(&db, &[Workload::HealthCheck]).unwrap();
        let rendered = render(&db).unwrap();
        let plans = &rendered
            .files
            .iter()
            .find(|(p, _)| p.ends_with("SUPPORT_PLANS.md"))
            .unwrap()
            .1;
        assert!(
            plans.contains("**validated**"),
            "summary flips to validated"
        );
        assert!(plans.contains("✓ unlocks"), "per-step verdicts render");
        assert!(
            !plans.contains("predicted |"),
            "no step left unvalidated for stored workloads"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn os_matrix_renders_after_a_matrix_sweep_and_cross_links() {
        use loupe_plan::os;
        let (dir, db) = seeded_db("osmatrix", 4);
        // No matrix cells yet: no OS_MATRIX.md, no cross-link column.
        let rendered = render(&db).unwrap();
        assert!(!rendered
            .files
            .iter()
            .any(|(p, _)| p.ends_with("OS_MATRIX.md")));
        let plans = &rendered
            .files
            .iter()
            .find(|(p, _)| p.ends_with("SUPPORT_PLANS.md"))
            .unwrap()
            .1;
        assert!(!plans.contains("OS_MATRIX.md"));

        let cfg = crate::MatrixConfig {
            oses: vec![os::find("kerla").unwrap(), os::find("gvisor").unwrap()],
            sweep: crate::SweepConfig {
                workloads: vec![Workload::HealthCheck],
                ..crate::SweepConfig::default()
            },
            ..crate::MatrixConfig::default()
        };
        let fleet: Vec<_> = registry::detailed().into_iter().take(4).collect();
        crate::sweep_matrix(&db, fleet, &cfg).unwrap();

        let rendered = render(&db).unwrap();
        let matrix_doc = &rendered
            .files
            .iter()
            .find(|(p, _)| p.ends_with("OS_MATRIX.md"))
            .expect("OS_MATRIX.md rendered once cells exist")
            .1;
        assert!(
            matrix_doc.contains("[kerla](#kerla)"),
            "row links to section"
        );
        assert!(matrix_doc.contains("### kerla"), "per-OS section exists");
        assert!(matrix_doc.contains("Out of the box"));
        assert!(
            matrix_doc.contains("First rejected feature"),
            "failure causes render"
        );
        let plans = &rendered
            .files
            .iter()
            .find(|(p, _)| p.ends_with("SUPPORT_PLANS.md"))
            .unwrap()
            .1;
        assert!(
            plans.contains("[pass rates](OS_MATRIX.md#kerla)"),
            "per-OS rows cross-link to the matrix"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn app_pages_cover_every_stored_app() {
        let (dir, db) = seeded_db("pages", 4);
        let rendered = render(&db).unwrap();
        for (app, _) in db.list().unwrap() {
            assert!(
                rendered
                    .files
                    .iter()
                    .any(|(p, _)| p.ends_with(format!("{app}.md"))),
                "page for {app}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
