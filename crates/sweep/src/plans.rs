//! Fleet-wide support-plan validation: generate the Table 1 plan for
//! every curated OS from the sweep database's measurements, replay each
//! plan on a restricted kernel, and persist the verdicts next to the
//! measurements so the generated `SUPPORT_PLANS.md` can show *validated*
//! rather than merely *predicted* support.

use std::collections::BTreeMap;
use std::fmt;

use loupe_apps::{registry, Workload};
use loupe_core::fingerprint_of;
use loupe_db::{ns, Database, DbError};
use loupe_plan::{os, OsSpec, PlanValidation, PlanValidator, SupportPlan, ValidateError};

/// Errors from a fleet-wide validation pass.
#[derive(Debug)]
pub enum PlanSweepError {
    /// Database I/O or corruption.
    Db(DbError),
    /// A plan referenced an app the registry cannot produce.
    Validate {
        /// OS whose plan failed to validate.
        os: String,
        /// The underlying error.
        error: ValidateError,
    },
}

impl fmt::Display for PlanSweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanSweepError::Db(e) => write!(f, "{e}"),
            PlanSweepError::Validate { os, error } => {
                write!(f, "validating {os} plan: {error}")
            }
        }
    }
}

impl std::error::Error for PlanSweepError {}

impl From<DbError> for PlanSweepError {
    fn from(e: DbError) -> Self {
        PlanSweepError::Db(e)
    }
}

/// Validates the support plan of every OS in `oses` against the stored
/// measurements of every workload in `workloads` that has reports, and
/// persists each verdict into `db`. Returns the validations in
/// `(workload, OS)` order. Workloads with no stored measurements are
/// skipped (nothing to plan from).
///
/// # Errors
///
/// Database failures and plans referencing unknown applications.
pub fn validate_plans(
    db: &Database,
    workloads: &[Workload],
    oses: &[OsSpec],
) -> Result<Vec<PlanValidation>, PlanSweepError> {
    let validator = PlanValidator::new();
    let mut out = Vec::new();
    for &workload in workloads {
        let reqs = db.requirements(workload)?;
        if reqs.is_empty() {
            continue;
        }
        // One requirements fingerprint per workload, one OS fingerprint
        // per spec: a validation is a deterministic replay of the plan
        // generated from exactly these two inputs.
        let reqs_fp = fingerprint_of(&reqs);
        for spec in oses {
            let key = loupe_db::plan_key(&spec.name, workload);
            let mut inputs = BTreeMap::new();
            inputs.insert("os".to_owned(), fingerprint_of(spec));
            inputs.insert("requirements".to_owned(), reqs_fp);
            if db.is_current(ns::PLANS, &key, &inputs) {
                if let Some(stored) = db.load_plan_validation(&spec.name, workload)? {
                    db.note_hit(ns::PLANS);
                    out.push(stored);
                    continue;
                }
            }
            if db.recorded_output(ns::PLANS, &key).is_some() {
                db.note_stale(ns::PLANS);
            } else {
                db.note_miss(ns::PLANS);
            }
            let plan = SupportPlan::generate(spec, &reqs);
            let validation = validator
                .validate(spec, &plan, &reqs, workload, registry::find)
                .map_err(|error| PlanSweepError::Validate {
                    os: spec.name.clone(),
                    error,
                })?;
            db.save_plan_validation(&validation)?;
            db.record_provenance(ns::PLANS, &key, inputs, BTreeMap::new());
            out.push(validation);
        }
    }
    Ok(out)
}

/// Validates plans for the curated OS specs of §4.1 — the default set
/// `loupe sweep --validate-plans` runs.
///
/// # Errors
///
/// As for [`validate_plans`].
pub fn validate_curated_plans(
    db: &Database,
    workloads: &[Workload],
) -> Result<Vec<PlanValidation>, PlanSweepError> {
    validate_plans(db, workloads, &os::db())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sweep, SweepConfig};
    use loupe_syscalls::SysnoSet;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("loupe-plans-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn fleet_validation_persists_per_os_verdicts() {
        let dir = tmpdir("fleet");
        let db = Database::open(&dir).unwrap();
        let sweep = Sweep::new(SweepConfig {
            workloads: vec![Workload::HealthCheck],
            ..SweepConfig::default()
        });
        sweep.run(&db, registry::detailed()).unwrap();

        let oses = vec![
            os::find("kerla").unwrap(),
            OsSpec::new("bare", "0", SysnoSet::new()),
        ];
        let validations =
            validate_plans(&db, &[Workload::HealthCheck, Workload::Benchmark], &oses).unwrap();
        // Benchmark has no stored reports: only health validations exist.
        assert_eq!(validations.len(), 2);
        for v in &validations {
            assert_eq!(v.workload, Workload::HealthCheck);
            assert!(
                v.is_valid(),
                "generated plans must replay cleanly:\n{}",
                v.to_table()
            );
            let stored = db
                .load_plan_validation(&v.os, v.workload)
                .unwrap()
                .expect("persisted");
            assert_eq!(&stored, v);
        }
        // Starting from nothing, every app needs a step.
        let bare = validations.iter().find(|v| v.os == "bare").unwrap();
        assert!(bare.initial.is_empty());
        assert_eq!(bare.steps.len(), 12);
        assert_eq!(
            db.list_plan_validations().unwrap().len(),
            2,
            "one verdict per (os, workload)"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
