//! The static-analysis sweep stage and the fleet-wide static-vs-dynamic
//! comparison (the paper's Figs. 4–7 and §5.1).
//!
//! The paper's headline argument is that static analysis overestimates
//! application syscall requirements 2–5×, which misdirects
//! compatibility-layer effort. This module makes that argument
//! measurable over the whole fleet:
//!
//! * [`sweep_static`] runs the [`BinaryAnalyzer`] and [`SourceAnalyzer`]
//!   baselines over a fleet on the shared bounded worker pool and
//!   persists the [`StaticReport`]s in the database's level-keyed
//!   `static/` namespace;
//! * [`compare`] joins the static reports against the stored dynamic
//!   measurements of every workload and computes, per app, the Fig. 4
//!   overestimation factors — checking the structural invariant
//!   **dynamic ⊆ source ⊆ binary** along the way — plus the Fig. 6/7
//!   API-importance rank shifts and, per curated OS, the size of a
//!   support plan built from static requirements vs the validated
//!   dynamic plan (the "static plans waste effort" claim, per OS);
//! * [`render_static_comparison`] turns the comparisons into the
//!   generated, drift-checked `docs/STATIC_VS_DYNAMIC.md`.

use std::fmt;
use std::fmt::Write as _;

use loupe_apps::{AppModel, Workload};
use loupe_core::{fingerprint_of, AppReport};
use loupe_db::{ns, Database, DbError};
use loupe_plan::{importance_fractions, os, AppRequirement, SupportPlan};
use loupe_static::{api_importance, Level, StaticReport};
use loupe_syscalls::{Sysno, SysnoSet};

use crate::pool;

/// The outcome of a static sweep.
#[derive(Debug, Clone)]
pub struct StaticSweepSummary {
    /// Entries analysed fresh in this sweep.
    pub analyzed: usize,
    /// Entries served from the database.
    pub cached: usize,
    /// Every (app, level) report, deterministically ordered by
    /// `(app, level)`.
    pub reports: Vec<StaticReport>,
}

/// Runs both static analysers over `apps` on a bounded worker pool,
/// persisting every report into `db`'s `static/` namespace. Cached
/// entries are skipped unless `force` re-analyses them (overwriting:
/// static analysis is pure, there is nothing to merge). `workers = 0`
/// picks `min(available_parallelism, 16)`.
///
/// # Errors
///
/// Database I/O and corruption errors; a panicking analyser surfaces as
/// an I/O error naming the app.
pub fn sweep_static(
    db: &Database,
    mut apps: Vec<Box<dyn AppModel>>,
    workers: usize,
    force: bool,
) -> Result<StaticSweepSummary, DbError> {
    let mut seen = std::collections::BTreeSet::new();
    apps.retain(|app| seen.insert(app.name().to_owned()));

    let jobs: Vec<(usize, Level)> = (0..apps.len())
        .flat_map(|a| Level::ALL.into_iter().map(move |l| (a, l)))
        .collect();
    let workers = effective_workers(workers, jobs.len());

    // Static analysis is a pure function of the app's code descriptor,
    // so the input set is the app fingerprint alone — computed once per
    // app, not once per (app, level) job.
    let app_fps: Vec<loupe_core::Fingerprint> = apps
        .iter()
        .map(|app| fingerprint_of(&(app.spec(), app.code())))
        .collect();

    enum JobOut {
        Fresh(StaticReport),
        Cached(StaticReport),
        Db(DbError),
    }

    let outcomes = pool::run_jobs(workers, &jobs, |&(app_idx, level)| {
        let app = apps[app_idx].as_ref();
        let key = loupe_db::static_key(level, app.name());
        let mut inputs = std::collections::BTreeMap::new();
        inputs.insert("app".to_owned(), app_fps[app_idx]);
        let current = db.is_current(ns::STATIC, &key, &inputs);
        let had_entry = match db.load_static(level, app.name()) {
            Ok(Some(cached)) if current && !force => {
                db.note_hit(ns::STATIC);
                return JobOut::Cached(cached);
            }
            Ok(existing) => existing.is_some(),
            Err(e) => return JobOut::Db(e),
        };
        if had_entry && !current {
            db.note_stale(ns::STATIC);
        } else {
            db.note_miss(ns::STATIC);
        }
        let report = level.analyzer().analyze(app);
        match db.save_static(&report) {
            Ok(()) => {
                db.record_provenance(ns::STATIC, &key, inputs, Default::default());
                JobOut::Fresh(report)
            }
            Err(e) => JobOut::Db(e),
        }
    });

    let mut summary = StaticSweepSummary {
        analyzed: 0,
        cached: 0,
        reports: Vec::new(),
    };
    for (outcome, &(app_idx, level)) in outcomes.into_iter().zip(&jobs) {
        match outcome {
            Ok(JobOut::Fresh(r)) => {
                summary.analyzed += 1;
                summary.reports.push(r);
            }
            Ok(JobOut::Cached(r)) => {
                summary.cached += 1;
                summary.reports.push(r);
            }
            Ok(JobOut::Db(e)) => return Err(e),
            Err(panic) => {
                return Err(DbError::Io(std::io::Error::other(format!(
                    "static analysis of {} ({}) panicked: {panic}",
                    apps[app_idx].name(),
                    level.label()
                ))))
            }
        }
    }
    summary
        .reports
        .sort_by(|a, b| (&a.app, a.level).cmp(&(&b.app, b.level)));
    Ok(summary)
}

fn effective_workers(workers: usize, jobs: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    let chosen = if workers == 0 { auto } else { workers };
    chosen.clamp(1, jobs.max(1))
}

/// Errors from the static-vs-dynamic comparison.
#[derive(Debug)]
pub enum CompareError {
    /// Database I/O or corruption.
    Db(DbError),
    /// No dynamic measurements stored: nothing to compare against.
    NoDynamicReports,
    /// A dynamic report has no static counterpart at this level — run
    /// `loupe sweep --static` first.
    MissingStatic {
        /// Application missing a static report.
        app: String,
        /// The missing level.
        level: Level,
    },
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompareError::Db(e) => write!(f, "{e}"),
            CompareError::NoDynamicReports => {
                write!(f, "no dynamic measurements stored; run `loupe sweep` first")
            }
            CompareError::MissingStatic { app, level } => write!(
                f,
                "no {} static report for `{app}`; run `loupe sweep --static` first",
                level.label()
            ),
        }
    }
}

impl std::error::Error for CompareError {}

impl From<DbError> for CompareError {
    fn from(e: DbError) -> Self {
        CompareError::Db(e)
    }
}

/// One application's static-vs-dynamic numbers (a Fig. 4 bar group).
#[derive(Debug, Clone, PartialEq)]
pub struct AppComparison {
    /// Application name.
    pub app: String,
    /// Syscalls the workload actually exercised (traced ∪ fallbacks).
    pub dynamic_used: usize,
    /// Syscalls Loupe says must be implemented (`plan_required`).
    pub dynamic_required: usize,
    /// Syscalls the source-level analyser attributes to the app.
    pub source: usize,
    /// Syscalls the binary-level analyser attributes to the app.
    pub binary: usize,
    /// `source / dynamic_used` (≥ 1 whenever the subset invariant holds).
    pub source_over_used: f64,
    /// `binary / dynamic_used`.
    pub binary_over_used: f64,
    /// `source / dynamic_required` — the effort misdirection factor.
    pub source_over_required: f64,
    /// `binary / dynamic_required`.
    pub binary_over_required: f64,
    /// Whether dynamic ⊆ source ⊆ binary holds for this app.
    pub subset_ok: bool,
    /// Dynamically exercised syscalls the source analyser missed
    /// (diagnostics; empty when `subset_ok`).
    pub missing_from_source: SysnoSet,
    /// Source-view syscalls the binary analyser missed (empty when
    /// `subset_ok`).
    pub missing_from_binary: SysnoSet,
}

/// How one syscall's importance rank moves between the static and
/// dynamic definitions of "needed" (Figs. 6–7).
#[derive(Debug, Clone, PartialEq)]
pub struct RankShift {
    /// The syscall.
    pub sysno: Sysno,
    /// Rank under the dynamic (Loupe required) definition, 1-based.
    pub dynamic_rank: usize,
    /// Fraction of apps requiring it dynamically.
    pub dynamic_importance: f64,
    /// Rank under the static (binary-analysis) definition, 1-based;
    /// `None` if static analysis never attributes it to any app.
    pub static_rank: Option<usize>,
    /// Fraction of app binaries containing it statically.
    pub static_importance: f64,
}

/// Static-plan vs dynamic-plan sizes for one curated OS: the per-OS
/// "static plans waste effort" numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDelta {
    /// Target OS.
    pub os: String,
    /// Apps the OS supports before any work, per the dynamic plan.
    pub dynamic_initial: usize,
    /// Syscalls the dynamic plan implements in total.
    pub dynamic_implemented: usize,
    /// Apps supported with zero work when requirements come from the
    /// source analyser.
    pub source_initial: usize,
    /// Syscalls a source-requirements plan implements.
    pub source_implemented: usize,
    /// Apps supported with zero work when requirements come from the
    /// binary analyser.
    pub binary_initial: usize,
    /// Syscalls a binary-requirements plan implements.
    pub binary_implemented: usize,
}

impl PlanDelta {
    /// Implementation work the source-level plan schedules beyond the
    /// dynamic plan.
    pub fn source_waste(&self) -> usize {
        self.source_implemented
            .saturating_sub(self.dynamic_implemented)
    }

    /// Implementation work the binary-level plan schedules beyond the
    /// dynamic plan.
    pub fn binary_waste(&self) -> usize {
        self.binary_implemented
            .saturating_sub(self.dynamic_implemented)
    }
}

/// The full static-vs-dynamic comparison for one workload.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The workload whose dynamic measurements anchor the comparison.
    pub workload: Workload,
    /// Per-app factors, sorted by app name.
    pub apps: Vec<AppComparison>,
    /// Mean `source / dynamic_used` over the fleet.
    pub mean_source_factor: f64,
    /// Mean `binary / dynamic_used` over the fleet.
    pub mean_binary_factor: f64,
    /// Distinct syscalls exercised anywhere in the fleet dynamically.
    pub fleet_dynamic_used: usize,
    /// Distinct syscalls required anywhere per Loupe.
    pub fleet_dynamic_required: usize,
    /// Distinct syscalls attributed anywhere by the source analyser.
    pub fleet_source: usize,
    /// Distinct syscalls attributed anywhere by the binary analyser.
    pub fleet_binary: usize,
    /// Importance rank shifts for the dynamically most-required
    /// syscalls.
    pub rank_shifts: Vec<RankShift>,
    /// Per-curated-OS plan-size deltas.
    pub plan_deltas: Vec<PlanDelta>,
}

impl Comparison {
    /// Whether dynamic ⊆ source ⊆ binary holds for every app.
    pub fn invariants_hold(&self) -> bool {
        self.apps.iter().all(|a| a.subset_ok)
    }
}

/// Number of top dynamically-required syscalls whose rank shift is
/// tabulated (Fig. 6/7 show a comparable head of the distribution).
const RANK_SHIFT_ROWS: usize = 15;

fn ratio(over: usize, under: usize) -> f64 {
    over as f64 / under.max(1) as f64
}

/// Joins the stored static reports against the stored dynamic
/// measurements and computes one [`Comparison`] per workload that has
/// dynamic reports.
///
/// # Errors
///
/// Database failures, an empty dynamic namespace, or a dynamic report
/// with no static counterpart.
pub fn compare(db: &Database) -> Result<Vec<Comparison>, CompareError> {
    let mut out = Vec::new();
    for &workload in Workload::ALL {
        let reports = db.load_workload(workload)?;
        if reports.is_empty() {
            continue;
        }
        out.push(compare_workload(db, workload, &reports)?);
    }
    if out.is_empty() {
        return Err(CompareError::NoDynamicReports);
    }
    Ok(out)
}

fn compare_workload(
    db: &Database,
    workload: Workload,
    reports: &[AppReport],
) -> Result<Comparison, CompareError> {
    let mut apps = Vec::new();
    let mut statics_binary = Vec::new();
    let mut source_reqs = Vec::new();
    let mut binary_reqs = Vec::new();
    let mut fleet_used = SysnoSet::new();
    let mut fleet_required = SysnoSet::new();
    let mut fleet_source = SysnoSet::new();
    let mut fleet_binary = SysnoSet::new();

    for report in reports {
        let load = |level: Level| -> Result<StaticReport, CompareError> {
            db.load_static(level, &report.app)?
                .ok_or_else(|| CompareError::MissingStatic {
                    app: report.app.clone(),
                    level,
                })
        };
        let src = load(Level::Source)?;
        let bin = load(Level::Binary)?;

        let used = report.traced().union(&report.fallbacks);
        let required = report.plan_required();
        let missing_from_source = used.difference(&src.syscalls);
        let missing_from_binary = src.syscalls.difference(&bin.syscalls);
        apps.push(AppComparison {
            app: report.app.clone(),
            dynamic_used: used.len(),
            dynamic_required: required.len(),
            source: src.syscalls.len(),
            binary: bin.syscalls.len(),
            source_over_used: ratio(src.syscalls.len(), used.len()),
            binary_over_used: ratio(bin.syscalls.len(), used.len()),
            source_over_required: ratio(src.syscalls.len(), required.len()),
            binary_over_required: ratio(bin.syscalls.len(), required.len()),
            subset_ok: missing_from_source.is_empty() && missing_from_binary.is_empty(),
            missing_from_source,
            missing_from_binary,
        });

        fleet_used = fleet_used.union(&used);
        fleet_required = fleet_required.union(&required);
        fleet_source = fleet_source.union(&src.syscalls);
        fleet_binary = fleet_binary.union(&bin.syscalls);

        // Static "requirements": a static analyser cannot tell stubbable
        // from required, so a plan built on it must implement everything
        // it reports — exactly the misdirection the paper quantifies.
        source_reqs.push(static_requirement(&src));
        binary_reqs.push(static_requirement(&bin));
        statics_binary.push(bin);
    }

    let n = apps.len().max(1) as f64;
    let mean_source_factor = apps.iter().map(|a| a.source_over_used).sum::<f64>() / n;
    let mean_binary_factor = apps.iter().map(|a| a.binary_over_used).sum::<f64>() / n;

    // Importance under both definitions, via the one shared metric.
    let required_sets: Vec<SysnoSet> = reports.iter().map(AppReport::plan_required).collect();
    let dynamic_importance = importance_fractions(&required_sets);
    let static_importance = api_importance(&statics_binary);
    let rank_shifts = dynamic_importance
        .iter()
        .take(RANK_SHIFT_ROWS)
        .enumerate()
        .map(|(i, &(sysno, importance))| {
            let static_pos = static_importance.iter().position(|&(s, _)| s == sysno);
            RankShift {
                sysno,
                dynamic_rank: i + 1,
                dynamic_importance: importance,
                static_rank: static_pos.map(|p| p + 1),
                static_importance: static_pos.map(|p| static_importance[p].1).unwrap_or(0.0),
            }
        })
        .collect();

    // Per-OS plan sizes under the three requirement definitions.
    let dynamic_reqs: Vec<AppRequirement> =
        reports.iter().map(AppRequirement::from_report).collect();
    let plan_deltas = os::db()
        .into_iter()
        .map(|spec| {
            let dynamic = SupportPlan::generate(&spec, &dynamic_reqs);
            let source = SupportPlan::generate(&spec, &source_reqs);
            let binary = SupportPlan::generate(&spec, &binary_reqs);
            PlanDelta {
                os: spec.name,
                dynamic_initial: dynamic.initially_supported.len(),
                dynamic_implemented: dynamic.total_implemented(),
                source_initial: source.initially_supported.len(),
                source_implemented: source.total_implemented(),
                binary_initial: binary.initially_supported.len(),
                binary_implemented: binary.total_implemented(),
            }
        })
        .collect();

    Ok(Comparison {
        workload,
        apps,
        mean_source_factor,
        mean_binary_factor,
        fleet_dynamic_used: fleet_used.len(),
        fleet_dynamic_required: fleet_required.len(),
        fleet_source: fleet_source.len(),
        fleet_binary: fleet_binary.len(),
        rank_shifts,
        plan_deltas,
    })
}

/// The planner's view of a static report: everything the analyser saw
/// must be implemented (no stub/fake knowledge exists statically).
fn static_requirement(report: &StaticReport) -> AppRequirement {
    AppRequirement {
        app: report.app.clone(),
        required: report.syscalls.clone(),
        stubbable: SysnoSet::new(),
        fake_only: SysnoSet::new(),
        traced: report.syscalls.clone(),
    }
}

fn workload_title(w: Workload) -> &'static str {
    match w {
        Workload::HealthCheck => "health-check",
        Workload::Benchmark => "benchmark",
        Workload::TestSuite => "test-suite",
    }
}

/// Renders `docs/STATIC_VS_DYNAMIC.md` from the comparisons — a pure
/// function of its input, byte-identical for identical databases, so
/// the drift check applies to it like every generated page.
pub fn render_static_comparison(comparisons: &[Comparison]) -> String {
    let mut out = String::new();
    out.push_str("# Static vs dynamic analysis (Figs. 4–7)\n\n");
    out.push_str(
        "Generated by `loupe report` from a sweep database — **do not edit by\n\
         hand**. Regenerate with:\n\n\
         ```sh\n\
         cargo run --release -p loupe-cli -- sweep --db target/loupedb --workload all --jobs 2 --transfer --static --validate-plans\n\
         cargo run --release -p loupe-cli -- report --db target/loupedb --docs docs\n\
         ```\n\n\
         The paper's core quantitative claim (§5.1, Fig. 4): static analysis —\n\
         the binary-level Tsai-style analyser and the source-level Unikraft\n\
         analyser — overestimates what applications need from a kernel, because\n\
         it sees every dead branch, error path and linked-library syscall. The\n\
         tables below compare both static baselines against the dynamic\n\
         measurements stored in the same database, per app and per OS. The\n\
         structural invariant **dynamic ⊆ source ⊆ binary** is checked for\n\
         every app: dynamic analysis under-approximates code (it sees only\n\
         executed paths), static analysis over-approximates it.\n\n",
    );

    for c in comparisons {
        let _ = writeln!(
            out,
            "## {} workload — {} applications\n",
            workload_title(c.workload),
            c.apps.len()
        );
        let _ = writeln!(
            out,
            "Fleet-wide distinct syscalls: **{} dynamically exercised** ({} required\n\
             per Loupe), {} attributed by source analysis, {} by binary analysis.\n\
             Mean per-app overestimation vs the dynamically exercised set:\n\
             **{:.2}× (source)**, **{:.2}× (binary)**. Invariant dynamic ⊆ source ⊆\n\
             binary: **{}**.\n",
            c.fleet_dynamic_used,
            c.fleet_dynamic_required,
            c.fleet_source,
            c.fleet_binary,
            c.mean_source_factor,
            c.mean_binary_factor,
            if c.invariants_hold() {
                "holds for every app"
            } else {
                "VIOLATED (see per-app rows)"
            }
        );

        out.push_str(
            "### Per-app overestimation factors (Fig. 4)\n\n\
             | App | Dynamic used | Dynamic required | Source | Binary | Source/used | Binary/used | Source/required | Binary/required | dyn ⊆ src ⊆ bin |\n\
             |-----|-------------:|-----------------:|-------:|-------:|------------:|------------:|----------------:|----------------:|-----------------|\n",
        );
        for a in &c.apps {
            let invariant = if a.subset_ok {
                "✓".to_owned()
            } else {
                let mut bits = Vec::new();
                if !a.missing_from_source.is_empty() {
                    bits.push(format!(
                        "source misses `{}`",
                        names_of(&a.missing_from_source)
                    ));
                }
                if !a.missing_from_binary.is_empty() {
                    bits.push(format!(
                        "binary misses `{}`",
                        names_of(&a.missing_from_binary)
                    ));
                }
                format!("**✗ {}**", bits.join("; "))
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {:.2}× | {:.2}× | {:.2}× | {:.2}× | {} |",
                a.app,
                a.dynamic_used,
                a.dynamic_required,
                a.source,
                a.binary,
                a.source_over_used,
                a.binary_over_used,
                a.source_over_required,
                a.binary_over_required,
                invariant
            );
        }
        out.push('\n');

        out.push_str(
            "### API-importance rank shifts (Figs. 6–7)\n\n\
             How the most dynamically-required syscalls rank when importance is\n\
             measured statically (fraction of app binaries containing the call)\n\
             instead of dynamically (fraction of apps requiring it). A large\n\
             positive shift means static analysis buries a genuinely critical\n\
             call under dead-code noise.\n\n\
             | Dynamic rank | Syscall | Required by (dyn) | Static rank | In binaries (static) | Shift |\n\
             |-------------:|---------|------------------:|------------:|---------------------:|------:|\n",
        );
        for s in &c.rank_shifts {
            let (srank, shift) = match s.static_rank {
                Some(r) => (
                    r.to_string(),
                    format!("{:+}", r as i64 - s.dynamic_rank as i64),
                ),
                None => ("–".to_owned(), "n/a".to_owned()),
            };
            let _ = writeln!(
                out,
                "| {} | `{}` | {:.0}% | {} | {:.0}% | {} |",
                s.dynamic_rank,
                s.sysno.name(),
                s.dynamic_importance * 100.0,
                srank,
                s.static_importance * 100.0,
                shift
            );
        }
        out.push('\n');

        out.push_str(
            "### Support-plan deltas per curated OS (§4.1 × Fig. 4)\n\n\
             Syscalls each OS would implement to support the measured fleet when\n\
             the plan is generated from dynamic requirements vs from what a\n\
             static analyser reports (a static analyser cannot tell stubbable\n\
             from required, so its plan implements everything it sees). *Wasted*\n\
             is the extra implementation work the static plan schedules.\n\n\
             | OS | Apps at step 0 (dyn/src/bin) | Implement (dyn) | Implement (src) | Implement (bin) | Wasted (src) | Wasted (bin) |\n\
             |----|------------------------------|----------------:|----------------:|----------------:|-------------:|-------------:|\n",
        );
        for d in &c.plan_deltas {
            let _ = writeln!(
                out,
                "| {} | {} / {} / {} | {} | {} | {} | +{} | +{} |",
                d.os,
                d.dynamic_initial,
                d.source_initial,
                d.binary_initial,
                d.dynamic_implemented,
                d.source_implemented,
                d.binary_implemented,
                d.source_waste(),
                d.binary_waste()
            );
        }
        out.push('\n');
    }

    out.push_str(
        "---\n\nDynamic fleet classifications live in\n\
         [COMPATIBILITY.md](COMPATIBILITY.md); the per-OS dynamic plans these\n\
         deltas are measured against live in [SUPPORT_PLANS.md](SUPPORT_PLANS.md).\n",
    );
    out
}

fn names_of(set: &SysnoSet) -> String {
    set.iter()
        .map(|s| s.name().to_owned())
        .collect::<Vec<_>>()
        .join("`, `")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sweep, SweepConfig};
    use loupe_apps::registry;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("loupe-statics-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn static_sweep_persists_and_caches() {
        let dir = tmpdir("cache");
        let db = Database::open(&dir).unwrap();
        let apps = || -> Vec<_> { registry::detailed().into_iter().take(5).collect() };

        let first = sweep_static(&db, apps(), 2, false).unwrap();
        assert_eq!(first.analyzed, 10, "5 apps x 2 levels");
        assert_eq!(first.cached, 0);
        assert_eq!(db.list_static().unwrap().len(), 10);

        let second = sweep_static(&db, apps(), 2, false).unwrap();
        assert_eq!(second.analyzed, 0, "second sweep is pure cache hits");
        assert_eq!(second.cached, 10);
        assert_eq!(first.reports, second.reports);

        // Deterministic across worker counts.
        let dir_b = tmpdir("cache-b");
        let db_b = Database::open(&dir_b).unwrap();
        let serial = sweep_static(&db_b, apps(), 1, false).unwrap();
        assert_eq!(serial.reports, first.reports);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn comparison_invariants_hold_for_the_detailed_fleet() {
        let dir = tmpdir("cmp");
        let db = Database::open(&dir).unwrap();
        Sweep::new(SweepConfig {
            workloads: vec![Workload::HealthCheck],
            ..SweepConfig::default()
        })
        .run(&db, registry::detailed())
        .unwrap();
        sweep_static(&db, registry::detailed(), 0, false).unwrap();

        let comparisons = compare(&db).unwrap();
        assert_eq!(comparisons.len(), 1);
        let c = &comparisons[0];
        assert_eq!(c.apps.len(), 12);
        assert!(
            c.invariants_hold(),
            "dynamic ⊆ source ⊆ binary must hold: {:?}",
            c.apps
                .iter()
                .filter(|a| !a.subset_ok)
                .map(|a| (&a.app, &a.missing_from_source, &a.missing_from_binary))
                .collect::<Vec<_>>()
        );
        for a in &c.apps {
            assert!(
                a.source_over_used >= 1.0,
                "{}: {}",
                a.app,
                a.source_over_used
            );
            assert!(a.binary_over_used >= a.source_over_used, "{}", a.app);
            assert!(a.source_over_required >= a.source_over_used, "{}", a.app);
        }
        // The paper's headline: binary analysis lands in the 2–5x band.
        assert!(
            c.mean_binary_factor > 2.0,
            "binary overestimation too small: {}",
            c.mean_binary_factor
        );
        // Static plans schedule strictly more implementation work.
        for d in &c.plan_deltas {
            assert!(d.source_implemented >= d.dynamic_implemented, "{}", d.os);
            assert!(d.binary_implemented >= d.source_implemented, "{}", d.os);
            assert!(
                d.binary_waste() > 0,
                "{}: binary plan must waste effort",
                d.os
            );
            assert!(d.dynamic_initial >= d.binary_initial, "{}", d.os);
        }
        assert_eq!(
            c.rank_shifts.len(),
            RANK_SHIFT_ROWS.min(c.rank_shifts.len())
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_without_static_reports_names_the_gap() {
        let dir = tmpdir("missing");
        let db = Database::open(&dir).unwrap();
        assert!(matches!(compare(&db), Err(CompareError::NoDynamicReports)));
        Sweep::new(SweepConfig {
            workloads: vec![Workload::HealthCheck],
            ..SweepConfig::default()
        })
        .run(&db, registry::detailed().into_iter().take(1).collect())
        .unwrap();
        match compare(&db) {
            Err(CompareError::MissingStatic { app, .. }) => {
                assert!(!app.is_empty());
            }
            other => panic!("expected MissingStatic, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rendering_is_deterministic_and_mentions_every_app_and_os() {
        let dir = tmpdir("render");
        let db = Database::open(&dir).unwrap();
        let apps = || -> Vec<_> { registry::detailed().into_iter().take(4).collect() };
        Sweep::new(SweepConfig {
            workloads: vec![Workload::HealthCheck],
            ..SweepConfig::default()
        })
        .run(&db, apps())
        .unwrap();
        sweep_static(&db, apps(), 0, false).unwrap();
        let comparisons = compare(&db).unwrap();
        let a = render_static_comparison(&comparisons);
        let b = render_static_comparison(&comparisons);
        assert_eq!(a, b);
        for app in comparisons[0].apps.iter() {
            assert!(a.contains(&format!("| {} |", app.app)), "{} row", app.app);
        }
        for spec in os::db() {
            assert!(
                a.contains(&format!("| {} |", spec.name)),
                "{} row",
                spec.name
            );
        }
        assert!(a.contains("holds for every app"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
