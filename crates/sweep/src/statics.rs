//! The static-analysis sweep stage and the fleet-wide static-vs-dynamic
//! comparison (the paper's Figs. 4–7 and §5.1).
//!
//! The paper's headline argument is that static analysis overestimates
//! application syscall requirements 2–5×, which misdirects
//! compatibility-layer effort. This module makes that argument
//! measurable over the whole fleet:
//!
//! * [`sweep_static`] lowers every app to its [`ProgramGraph`] and runs
//!   graph reachability at each rung of the precision ladder
//!   ([`Level::ALL`]) on the shared bounded worker pool, persisting the
//!   [`StaticReport`]s in the database's level-keyed `static/`
//!   namespace ([`sweep_static_levels`] restricts the rungs);
//! * [`compare`] joins the static reports against the stored dynamic
//!   measurements of every workload and computes, per app, the Fig. 4
//!   overestimation factor at every level — checking the containment
//!   chain **dynamic ⊆ L3 ⊆ L2 ⊆ L1 ⊆ L0** along the way — plus the
//!   Fig. 6/7 API-importance rank shifts and, per curated OS, the size
//!   of a support plan built from each level's requirements vs the
//!   validated dynamic plan (the "static plans waste effort" claim);
//! * [`render_static_comparison`] turns the comparisons into the
//!   generated, drift-checked `docs/STATIC_VS_DYNAMIC.md`, including
//!   worked witness examples showing *why* an analyser attributed a
//!   syscall.

use std::fmt;
use std::fmt::Write as _;

use loupe_apps::{AppModel, ProgramGraph, Workload};
use loupe_core::{fingerprint_of, AppReport};
use loupe_db::{ns, Database, DbError};
use loupe_plan::{importance_fractions, os, AppRequirement, SupportPlan};
use loupe_static::{analyze_graph, api_importance, Level, StaticReport};
use loupe_syscalls::{Sysno, SysnoSet};

use crate::pool;

/// The outcome of a static sweep.
#[derive(Debug, Clone)]
pub struct StaticSweepSummary {
    /// Entries analysed fresh in this sweep.
    pub analyzed: usize,
    /// Entries served from the database.
    pub cached: usize,
    /// The reports analysed fresh in this sweep, deterministically
    /// ordered by `(app, level)`. Cache hits are answered from the
    /// provenance manifest without re-reading (or re-parsing) the
    /// stored artifact — load them with [`Database::load_static`] if
    /// their content is needed.
    pub reports: Vec<StaticReport>,
}

/// Runs the full precision ladder over `apps`: shorthand for
/// [`sweep_static_levels`] with [`Level::ALL`].
///
/// # Errors
///
/// Database I/O and corruption errors; a panicking analyser surfaces as
/// an I/O error naming the app.
pub fn sweep_static(
    db: &Database,
    apps: Vec<Box<dyn AppModel>>,
    workers: usize,
    force: bool,
) -> Result<StaticSweepSummary, DbError> {
    sweep_static_levels(db, apps, &Level::ALL, workers, force)
}

/// Lowers each app to its program graph once, then analyses it at each
/// of `levels` on a bounded worker pool, persisting every report into
/// `db`'s `static/` namespace. Cached entries are skipped unless
/// `force` re-analyses them (overwriting: static analysis is pure,
/// there is nothing to merge). `workers = 0` picks
/// `min(available_parallelism, 16)`.
///
/// # Errors
///
/// Database I/O and corruption errors; a panicking analyser surfaces as
/// an I/O error naming the app.
pub fn sweep_static_levels(
    db: &Database,
    mut apps: Vec<Box<dyn AppModel>>,
    levels: &[Level],
    workers: usize,
    force: bool,
) -> Result<StaticSweepSummary, DbError> {
    let mut seen = std::collections::BTreeSet::new();
    apps.retain(|app| seen.insert(app.name().to_owned()));

    let jobs: Vec<(usize, Level)> = (0..apps.len())
        .flat_map(|a| levels.iter().map(move |&l| (a, l)))
        .collect();
    let workers = effective_workers(workers, jobs.len());

    // The graph — and therefore every level's report — is a pure
    // function of the app's descriptor, so the cache input set is the
    // (spec, code) fingerprint alone, computed once per app. The
    // lowered graphs are shared read-only across the per-level jobs.
    let app_fps: Vec<loupe_core::Fingerprint> = apps
        .iter()
        .map(|app| fingerprint_of(&(app.spec(), app.code())))
        .collect();
    // Graphs are lowered on demand: a fully cached sweep (the common
    // CI re-run) answers every job from the provenance manifest and
    // never lowers anything.
    let graphs: Vec<std::sync::OnceLock<ProgramGraph>> = (0..apps.len())
        .map(|_| std::sync::OnceLock::new())
        .collect();

    enum JobOut {
        Fresh(StaticReport),
        Cached,
        Db(DbError),
    }

    let outcomes = pool::run_jobs(workers, &jobs, |&(app_idx, level)| {
        let app = apps[app_idx].as_ref();
        let key = loupe_db::static_key(level, app.name());
        let mut inputs = std::collections::BTreeMap::new();
        inputs.insert("app".to_owned(), app_fps[app_idx]);
        // A current fingerprint answers the job outright: the stored
        // report is not re-read, let alone re-parsed — witnesses make
        // L0 artifacts large, and provenance was only recorded after a
        // successful save.
        let current = db.is_current(ns::STATIC, &key, &inputs);
        if current && !force {
            db.note_hit(ns::STATIC);
            return JobOut::Cached;
        }
        if !current && db.contains_static(level, app.name()) {
            db.note_stale(ns::STATIC);
        } else {
            db.note_miss(ns::STATIC);
        }
        let graph = graphs[app_idx].get_or_init(|| ProgramGraph::lower(apps[app_idx].as_ref()));
        let report = analyze_graph(graph, level);
        match db.save_static(&report) {
            Ok(()) => {
                db.record_provenance(ns::STATIC, &key, inputs, Default::default());
                JobOut::Fresh(report)
            }
            Err(e) => JobOut::Db(e),
        }
    });

    let mut summary = StaticSweepSummary {
        analyzed: 0,
        cached: 0,
        reports: Vec::new(),
    };
    for (outcome, &(app_idx, level)) in outcomes.into_iter().zip(&jobs) {
        match outcome {
            Ok(JobOut::Fresh(r)) => {
                summary.analyzed += 1;
                summary.reports.push(r);
            }
            Ok(JobOut::Cached) => summary.cached += 1,
            Ok(JobOut::Db(e)) => return Err(e),
            Err(panic) => {
                return Err(DbError::Io(std::io::Error::other(format!(
                    "static analysis of {} ({}) panicked: {panic}",
                    apps[app_idx].name(),
                    level.label()
                ))))
            }
        }
    }
    summary
        .reports
        .sort_by(|a, b| (&a.app, a.level).cmp(&(&b.app, b.level)));
    Ok(summary)
}

fn effective_workers(workers: usize, jobs: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    let chosen = if workers == 0 { auto } else { workers };
    chosen.clamp(1, jobs.max(1))
}

/// Errors from the static-vs-dynamic comparison.
#[derive(Debug)]
pub enum CompareError {
    /// Database I/O or corruption.
    Db(DbError),
    /// No dynamic measurements stored: nothing to compare against.
    NoDynamicReports,
    /// A dynamic report has no static counterpart at this level — run
    /// `loupe sweep --static` first.
    MissingStatic {
        /// Application missing a static report.
        app: String,
        /// The missing level.
        level: Level,
    },
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompareError::Db(e) => write!(f, "{e}"),
            CompareError::NoDynamicReports => {
                write!(f, "no dynamic measurements stored; run `loupe sweep` first")
            }
            CompareError::MissingStatic { app, level } => write!(
                f,
                "no {} static report for `{app}`; run `loupe sweep --static` first",
                level.label()
            ),
        }
    }
}

impl std::error::Error for CompareError {}

impl From<DbError> for CompareError {
    fn from(e: DbError) -> Self {
        CompareError::Db(e)
    }
}

/// Index of `level` in [`Level::ALL`] (and in every `[_; 4]` array of
/// per-level values below).
fn level_index(level: Level) -> usize {
    Level::ALL.iter().position(|&l| l == level).unwrap()
}

/// One precision rung's numbers for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// The precision level.
    pub level: Level,
    /// Syscalls the analyser attributes to the app at this level.
    pub attributed: usize,
    /// `attributed / dynamic_used` (≥ 1 whenever containment holds).
    pub over_used: f64,
    /// `attributed / dynamic_required` — the effort misdirection
    /// factor.
    pub over_required: f64,
}

/// One application's static-vs-dynamic numbers (a Fig. 4 bar group,
/// one bar per precision level).
#[derive(Debug, Clone, PartialEq)]
pub struct AppComparison {
    /// Application name.
    pub app: String,
    /// Syscalls the workload actually exercised (traced ∪ fallbacks).
    pub dynamic_used: usize,
    /// Syscalls Loupe says must be implemented (`plan_required`).
    pub dynamic_required: usize,
    /// Per-level stats, coarsest (L0) first — same order as
    /// [`Level::ALL`].
    pub levels: Vec<LevelStats>,
    /// Whether dynamic ⊆ L3 ⊆ L2 ⊆ L1 ⊆ L0 holds for this app.
    pub chain_ok: bool,
    /// Each broken link, as (description, syscalls the coarser side
    /// missed). Empty when `chain_ok`.
    pub chain_breaks: Vec<(String, SysnoSet)>,
}

impl AppComparison {
    /// The stats for `level`.
    pub fn level(&self, level: Level) -> &LevelStats {
        &self.levels[level_index(level)]
    }
}

/// How one syscall's importance rank moves between the static and
/// dynamic definitions of "needed" (Figs. 6–7).
#[derive(Debug, Clone, PartialEq)]
pub struct RankShift {
    /// The syscall.
    pub sysno: Sysno,
    /// Rank under the dynamic (Loupe required) definition, 1-based.
    pub dynamic_rank: usize,
    /// Fraction of apps requiring it dynamically.
    pub dynamic_importance: f64,
    /// Rank under the static (naive binary, L0) definition, 1-based;
    /// `None` if static analysis never attributes it to any app.
    pub static_rank: Option<usize>,
    /// Fraction of app binaries containing it statically.
    pub static_importance: f64,
}

/// Static-plan vs dynamic-plan sizes for one curated OS: the per-OS
/// "static plans waste effort" numbers, at every precision level.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDelta {
    /// Target OS.
    pub os: String,
    /// Apps the OS supports before any work, per the dynamic plan.
    pub dynamic_initial: usize,
    /// Syscalls the dynamic plan implements in total.
    pub dynamic_implemented: usize,
    /// Apps supported with zero work when requirements come from each
    /// level's analyser (L0 first, as [`Level::ALL`]).
    pub level_initial: [usize; 4],
    /// Syscalls a plan built from each level's requirements implements.
    pub level_implemented: [usize; 4],
}

impl PlanDelta {
    /// Apps supported at step 0 under `level`'s requirements.
    pub fn initial(&self, level: Level) -> usize {
        self.level_initial[level_index(level)]
    }

    /// Syscalls a plan built from `level`'s requirements implements.
    pub fn implemented(&self, level: Level) -> usize {
        self.level_implemented[level_index(level)]
    }

    /// Implementation work the `level` plan schedules beyond the
    /// dynamic plan.
    pub fn waste(&self, level: Level) -> usize {
        self.implemented(level)
            .saturating_sub(self.dynamic_implemented)
    }

    /// Waste of the source-level (L3) plan.
    pub fn source_waste(&self) -> usize {
        self.waste(Level::Source)
    }

    /// Waste of the naive binary (L0) plan.
    pub fn binary_waste(&self) -> usize {
        self.waste(Level::Binary)
    }
}

/// A worked witness example for the generated docs: one attributed
/// syscall and the call path that justifies it.
#[derive(Debug, Clone, PartialEq)]
pub struct WitnessExample {
    /// Application whose graph the path runs through.
    pub app: String,
    /// Level whose analyser produced the witness.
    pub level: Level,
    /// The attributed syscall.
    pub sysno: Sysno,
    /// The rendered entry→site path (see `loupe_static::Witness`).
    pub rendered: String,
    /// Why this example was picked, for the doc caption.
    pub note: String,
}

/// The full static-vs-dynamic comparison for one workload.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The workload whose dynamic measurements anchor the comparison.
    pub workload: Workload,
    /// Per-app factors, sorted by app name.
    pub apps: Vec<AppComparison>,
    /// Mean `attributed / dynamic_used` over the fleet, per level
    /// (L0 first).
    pub mean_factor: [f64; 4],
    /// Median `attributed / dynamic_used` over the fleet, per level.
    pub median_factor: [f64; 4],
    /// Distinct syscalls attributed anywhere in the fleet, per level.
    pub fleet_static: [usize; 4],
    /// Distinct syscalls exercised anywhere in the fleet dynamically.
    pub fleet_dynamic_used: usize,
    /// Distinct syscalls required anywhere per Loupe.
    pub fleet_dynamic_required: usize,
    /// Importance rank shifts for the dynamically most-required
    /// syscalls.
    pub rank_shifts: Vec<RankShift>,
    /// Per-curated-OS plan-size deltas.
    pub plan_deltas: Vec<PlanDelta>,
    /// Worked witness examples (deterministically chosen; empty when
    /// the stored reports predate witnesses).
    pub witness_examples: Vec<WitnessExample>,
}

impl Comparison {
    /// Whether dynamic ⊆ L3 ⊆ L2 ⊆ L1 ⊆ L0 holds for every app.
    pub fn invariants_hold(&self) -> bool {
        self.apps.iter().all(|a| a.chain_ok)
    }

    /// Mean over-used factor at `level`.
    pub fn mean_factor_of(&self, level: Level) -> f64 {
        self.mean_factor[level_index(level)]
    }
}

/// Number of top dynamically-required syscalls whose rank shift is
/// tabulated (Fig. 6/7 show a comparable head of the distribution).
const RANK_SHIFT_ROWS: usize = 15;

fn ratio(over: usize, under: usize) -> f64 {
    over as f64 / under.max(1) as f64
}

fn median(sorted: &mut [f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Joins the stored static reports against the stored dynamic
/// measurements and computes one [`Comparison`] per workload that has
/// dynamic reports.
///
/// # Errors
///
/// Database failures, an empty dynamic namespace, or a dynamic report
/// with no static counterpart.
pub fn compare(db: &Database) -> Result<Vec<Comparison>, CompareError> {
    let mut out = Vec::new();
    for &workload in Workload::ALL {
        let reports = db.load_workload(workload)?;
        if reports.is_empty() {
            continue;
        }
        out.push(compare_workload(db, workload, &reports)?);
    }
    if out.is_empty() {
        return Err(CompareError::NoDynamicReports);
    }
    Ok(out)
}

fn compare_workload(
    db: &Database,
    workload: Workload,
    reports: &[AppReport],
) -> Result<Comparison, CompareError> {
    let mut apps = Vec::new();
    let mut statics_l0 = Vec::new();
    let mut level_reqs: [Vec<AppRequirement>; 4] = Default::default();
    let mut fleet_used = SysnoSet::new();
    let mut fleet_required = SysnoSet::new();
    let mut fleet_static_sets: [SysnoSet; 4] = Default::default();
    let mut witness_examples = Vec::new();

    for report in reports {
        let load = |level: Level| -> Result<StaticReport, CompareError> {
            db.load_static(level, &report.app)?
                .ok_or_else(|| CompareError::MissingStatic {
                    app: report.app.clone(),
                    level,
                })
        };
        let ladder: Vec<StaticReport> = Level::ALL
            .iter()
            .map(|&l| load(l))
            .collect::<Result<_, _>>()?;

        let used = report.traced().union(&report.fallbacks);
        let required = report.plan_required();

        // The containment chain, finest set first: each link's finer
        // side must sit inside the coarser side.
        let mut chain_breaks = Vec::new();
        let missing_from_l3 = used.difference(&ladder[3].syscalls);
        if !missing_from_l3.is_empty() {
            chain_breaks.push(("dynamic ⊄ l3".to_owned(), missing_from_l3));
        }
        for fine in (1..4).rev() {
            let coarse = fine - 1;
            let missing = ladder[fine].syscalls.difference(&ladder[coarse].syscalls);
            if !missing.is_empty() {
                chain_breaks.push((
                    format!(
                        "{} ⊄ {}",
                        Level::ALL[fine].label(),
                        Level::ALL[coarse].label()
                    ),
                    missing,
                ));
            }
        }

        let levels: Vec<LevelStats> = ladder
            .iter()
            .map(|r| LevelStats {
                level: r.level,
                attributed: r.syscalls.len(),
                over_used: ratio(r.syscalls.len(), used.len()),
                over_required: ratio(r.syscalls.len(), required.len()),
            })
            .collect();

        apps.push(AppComparison {
            app: report.app.clone(),
            dynamic_used: used.len(),
            dynamic_required: required.len(),
            levels,
            chain_ok: chain_breaks.is_empty(),
            chain_breaks,
        });

        fleet_used = fleet_used.union(&used);
        fleet_required = fleet_required.union(&required);
        for (i, r) in ladder.iter().enumerate() {
            fleet_static_sets[i] = fleet_static_sets[i].union(&r.syscalls);
            // Static "requirements": a static analyser cannot tell
            // stubbable from required, so a plan built on it must
            // implement everything it reports — exactly the
            // misdirection the paper quantifies.
            level_reqs[i].push(static_requirement(r));
        }

        // Two worked examples from the first app whose reports carry
        // witnesses (reports are sorted by app, so this is stable):
        // the deepest L3 path, and a syscall only the naive L0 view
        // attributes.
        if witness_examples.is_empty() && !ladder[3].witnesses.is_empty() {
            if let Some(w) = ladder[3]
                .witnesses
                .iter()
                .max_by_key(|w| (w.path.len(), std::cmp::Reverse(w.sysno)))
            {
                witness_examples.push(WitnessExample {
                    app: report.app.clone(),
                    level: Level::L3,
                    sysno: w.sysno,
                    rendered: w.render(),
                    note: "deepest source-level (L3) attribution path".to_owned(),
                });
            }
            if let Some(w) = ladder[0]
                .witnesses
                .iter()
                .find(|w| !ladder[3].syscalls.contains(w.sysno))
            {
                witness_examples.push(WitnessExample {
                    app: report.app.clone(),
                    level: Level::L0,
                    sysno: w.sysno,
                    rendered: w.render(),
                    note: "attributed only by the naive binary view (L0); \
                           every finer level prunes it"
                        .to_owned(),
                });
            }
        }

        statics_l0.push(ladder.into_iter().next().unwrap());
    }

    let n = apps.len().max(1) as f64;
    let mut mean_factor = [0.0f64; 4];
    let mut median_factor = [0.0f64; 4];
    for i in 0..4 {
        let mut factors: Vec<f64> = apps.iter().map(|a| a.levels[i].over_used).collect();
        mean_factor[i] = factors.iter().sum::<f64>() / n;
        median_factor[i] = median(&mut factors);
    }

    // Importance under both definitions, via the one shared metric —
    // borrowing each report's set, never cloning it.
    let required_sets: Vec<SysnoSet> = reports.iter().map(AppReport::plan_required).collect();
    let dynamic_importance = importance_fractions(&required_sets);
    let static_importance = api_importance(&statics_l0);
    let rank_shifts = dynamic_importance
        .iter()
        .take(RANK_SHIFT_ROWS)
        .enumerate()
        .map(|(i, &(sysno, importance))| {
            let static_pos = static_importance.iter().position(|&(s, _)| s == sysno);
            RankShift {
                sysno,
                dynamic_rank: i + 1,
                dynamic_importance: importance,
                static_rank: static_pos.map(|p| p + 1),
                static_importance: static_pos.map(|p| static_importance[p].1).unwrap_or(0.0),
            }
        })
        .collect();

    // Per-OS plan sizes under the five requirement definitions
    // (dynamic + one per ladder rung).
    let dynamic_reqs: Vec<AppRequirement> =
        reports.iter().map(AppRequirement::from_report).collect();
    let plan_deltas = os::db()
        .into_iter()
        .map(|spec| {
            let dynamic = SupportPlan::generate(&spec, &dynamic_reqs);
            let mut level_initial = [0usize; 4];
            let mut level_implemented = [0usize; 4];
            for (i, reqs) in level_reqs.iter().enumerate() {
                let plan = SupportPlan::generate(&spec, reqs);
                level_initial[i] = plan.initially_supported.len();
                level_implemented[i] = plan.total_implemented();
            }
            PlanDelta {
                os: spec.name,
                dynamic_initial: dynamic.initially_supported.len(),
                dynamic_implemented: dynamic.total_implemented(),
                level_initial,
                level_implemented,
            }
        })
        .collect();

    Ok(Comparison {
        workload,
        apps,
        mean_factor,
        median_factor,
        fleet_static: fleet_static_sets.map(|s| s.len()),
        fleet_dynamic_used: fleet_used.len(),
        fleet_dynamic_required: fleet_required.len(),
        rank_shifts,
        plan_deltas,
        witness_examples,
    })
}

/// The planner's view of a static report: everything the analyser saw
/// must be implemented (no stub/fake knowledge exists statically).
fn static_requirement(report: &StaticReport) -> AppRequirement {
    AppRequirement {
        app: report.app.clone(),
        required: report.syscalls.clone(),
        stubbable: SysnoSet::new(),
        fake_only: SysnoSet::new(),
        traced: report.syscalls.clone(),
        ..AppRequirement::default()
    }
}

fn workload_title(w: Workload) -> &'static str {
    match w {
        Workload::HealthCheck => "health-check",
        Workload::Benchmark => "benchmark",
        Workload::TestSuite => "test-suite",
    }
}

/// Renders `docs/STATIC_VS_DYNAMIC.md` from the comparisons — a pure
/// function of its input, byte-identical for identical databases, so
/// the drift check applies to it like every generated page.
pub fn render_static_comparison(comparisons: &[Comparison]) -> String {
    let mut out = String::new();
    out.push_str("# Static vs dynamic analysis (Figs. 4–7)\n\n");
    out.push_str(
        "Generated by `loupe report` from a sweep database — **do not edit by\n\
         hand**. Regenerate with:\n\n\
         ```sh\n\
         cargo run --release -p loupe-cli -- sweep --db target/loupedb --workload all --jobs 2 --transfer --static --validate-plans\n\
         cargo run --release -p loupe-cli -- report --db target/loupedb --docs docs\n\
         ```\n\n\
         The paper's core quantitative claim (§5.1, Fig. 4): static analysis\n\
         overestimates what applications need from a kernel, because it sees\n\
         every dead branch, error path and linked-library syscall. Each app\n\
         model is lowered to a whole-program call graph (functions, direct and\n\
         indirect call edges, address-taken sets, syscall sites) and analysed\n\
         by graph reachability at four precision levels:\n\n",
    );
    for &level in &Level::ALL {
        let _ = writeln!(out, "* **{}** — {};", level.title(), level.description());
    }
    out.push_str(
        "\nEvery attributed syscall carries a **witness**: the shortest\n\
         entry→site call path justifying it (`loupe statics --explain <app>\n\
         <syscall>` prints and re-verifies them). The containment chain\n\
         **dynamic ⊆ L3 ⊆ L2 ⊆ L1 ⊆ L0** is checked for every app: dynamic\n\
         analysis under-approximates code (it sees only executed paths), each\n\
         coarser static level over-approximates it further.\n\n",
    );

    if let Some(c) = comparisons.iter().find(|c| !c.witness_examples.is_empty()) {
        out.push_str(
            "## Worked witness examples\n\n\
             `→` is a direct call edge, `⇢` an over-approximated indirect-call\n\
             hop; `[site k]` names the syscall site inside the final function.\n\n",
        );
        for w in &c.witness_examples {
            let _ = writeln!(
                out,
                "* `{}` in **{}** at {} — {}:\n\n  ```\n  {}\n  ```",
                w.sysno.name(),
                w.app,
                w.level.title(),
                w.note,
                w.rendered
            );
        }
        out.push('\n');
    }

    for c in comparisons {
        let _ = writeln!(
            out,
            "## {} workload — {} applications\n",
            workload_title(c.workload),
            c.apps.len()
        );
        let _ = writeln!(
            out,
            "Fleet-wide distinct syscalls: **{} dynamically exercised** ({} required\n\
             per Loupe). Containment chain dynamic ⊆ L3 ⊆ L2 ⊆ L1 ⊆ L0: **{}**.\n",
            c.fleet_dynamic_used,
            c.fleet_dynamic_required,
            if c.invariants_hold() {
                "holds for every app"
            } else {
                "VIOLATED (see per-app rows)"
            }
        );

        out.push_str(
            "### The precision ladder\n\n\
             | Level | Mean ×used | Median ×used | Fleet distinct |\n\
             |-------|-----------:|-------------:|---------------:|\n",
        );
        for (i, &level) in Level::ALL.iter().enumerate() {
            let _ = writeln!(
                out,
                "| {} | {:.2}× | {:.2}× | {} |",
                level.title(),
                c.mean_factor[i],
                c.median_factor[i],
                c.fleet_static[i]
            );
        }
        out.push('\n');

        out.push_str(
            "### Per-app overestimation factors (Fig. 4)\n\n\
             | App | Dyn used | Dyn required | L0 | L1 | L2 | L3 | L0/used | L3/used | chain |\n\
             |-----|---------:|-------------:|---:|---:|---:|---:|--------:|--------:|-------|\n",
        );
        for a in &c.apps {
            let chain = if a.chain_ok {
                "✓".to_owned()
            } else {
                let bits: Vec<String> = a
                    .chain_breaks
                    .iter()
                    .map(|(link, missing)| format!("{link}: misses `{}`", names_of(missing)))
                    .collect();
                format!("**✗ {}**", bits.join("; "))
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {:.2}× | {:.2}× | {} |",
                a.app,
                a.dynamic_used,
                a.dynamic_required,
                a.levels[0].attributed,
                a.levels[1].attributed,
                a.levels[2].attributed,
                a.levels[3].attributed,
                a.levels[0].over_used,
                a.levels[3].over_used,
                chain
            );
        }
        out.push('\n');

        out.push_str(
            "### API-importance rank shifts (Figs. 6–7)\n\n\
             How the most dynamically-required syscalls rank when importance is\n\
             measured statically (fraction of app binaries containing the call,\n\
             per the naive L0 view) instead of dynamically (fraction of apps\n\
             requiring it). A large positive shift means static analysis buries\n\
             a genuinely critical call under dead-code noise.\n\n\
             | Dynamic rank | Syscall | Required by (dyn) | Static rank | In binaries (L0) | Shift |\n\
             |-------------:|---------|------------------:|------------:|-----------------:|------:|\n",
        );
        for s in &c.rank_shifts {
            let (srank, shift) = match s.static_rank {
                Some(r) => (
                    r.to_string(),
                    format!("{:+}", r as i64 - s.dynamic_rank as i64),
                ),
                None => ("–".to_owned(), "n/a".to_owned()),
            };
            let _ = writeln!(
                out,
                "| {} | `{}` | {:.0}% | {} | {:.0}% | {} |",
                s.dynamic_rank,
                s.sysno.name(),
                s.dynamic_importance * 100.0,
                srank,
                s.static_importance * 100.0,
                shift
            );
        }
        out.push('\n');

        out.push_str(
            "### Support-plan deltas per curated OS (§4.1 × Fig. 4)\n\n\
             Syscalls each OS would implement to support the measured fleet when\n\
             the plan is generated from dynamic requirements vs from what each\n\
             static level reports (a static analyser cannot tell stubbable from\n\
             required, so its plan implements everything it sees). *Wasted* is\n\
             the extra implementation work the static plan schedules.\n\n\
             | OS | Implement (dyn) | L0 | L1 | L2 | L3 | Wasted (L0) | Wasted (L3) |\n\
             |----|----------------:|---:|---:|---:|---:|------------:|------------:|\n",
        );
        for d in &c.plan_deltas {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | +{} | +{} |",
                d.os,
                d.dynamic_implemented,
                d.level_implemented[0],
                d.level_implemented[1],
                d.level_implemented[2],
                d.level_implemented[3],
                d.binary_waste(),
                d.source_waste()
            );
        }
        out.push('\n');
    }

    out.push_str(
        "---\n\nDynamic fleet classifications live in\n\
         [COMPATIBILITY.md](COMPATIBILITY.md); the per-OS dynamic plans these\n\
         deltas are measured against live in [SUPPORT_PLANS.md](SUPPORT_PLANS.md).\n",
    );
    out
}

fn names_of(set: &SysnoSet) -> String {
    set.iter()
        .map(|s| s.name().to_owned())
        .collect::<Vec<_>>()
        .join("`, `")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sweep, SweepConfig};
    use loupe_apps::registry;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("loupe-statics-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn static_sweep_persists_and_caches() {
        let dir = tmpdir("cache");
        let db = Database::open(&dir).unwrap();
        let apps = || -> Vec<_> { registry::detailed().into_iter().take(5).collect() };

        let first = sweep_static(&db, apps(), 2, false).unwrap();
        assert_eq!(first.analyzed, 20, "5 apps x 4 levels");
        assert_eq!(first.cached, 0);
        assert_eq!(db.list_static().unwrap().len(), 20);

        let second = sweep_static(&db, apps(), 2, false).unwrap();
        assert_eq!(second.analyzed, 0, "second sweep is pure cache hits");
        assert_eq!(second.cached, 20);
        assert!(
            second.reports.is_empty(),
            "cache hits are manifest answers, not re-reads"
        );
        // What the db stores is exactly what the first sweep analysed.
        for r in &first.reports {
            let stored = db.load_static(r.level, &r.app).unwrap().unwrap();
            assert_eq!(&stored, r);
        }

        // Deterministic across worker counts.
        let dir_b = tmpdir("cache-b");
        let db_b = Database::open(&dir_b).unwrap();
        let serial = sweep_static(&db_b, apps(), 1, false).unwrap();
        assert_eq!(serial.reports, first.reports);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn level_restricted_sweep_only_touches_those_levels() {
        let dir = tmpdir("levels");
        let db = Database::open(&dir).unwrap();
        let apps = || -> Vec<_> { registry::detailed().into_iter().take(3).collect() };
        let partial = sweep_static_levels(&db, apps(), &[Level::L2], 1, false).unwrap();
        assert_eq!(partial.analyzed, 3);
        assert!(partial.reports.iter().all(|r| r.level == Level::L2));
        assert_eq!(db.list_static().unwrap().len(), 3);

        // Filling in the rest reuses the L2 entries.
        let full = sweep_static(&db, apps(), 1, false).unwrap();
        assert_eq!(full.analyzed, 9, "3 apps x 3 missing levels");
        assert_eq!(full.cached, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn comparison_invariants_hold_for_the_detailed_fleet() {
        let dir = tmpdir("cmp");
        let db = Database::open(&dir).unwrap();
        Sweep::new(SweepConfig {
            workloads: vec![Workload::HealthCheck],
            ..SweepConfig::default()
        })
        .run(&db, registry::detailed())
        .unwrap();
        sweep_static(&db, registry::detailed(), 0, false).unwrap();

        let comparisons = compare(&db).unwrap();
        assert_eq!(comparisons.len(), 1);
        let c = &comparisons[0];
        assert_eq!(c.apps.len(), 12);
        assert!(
            c.invariants_hold(),
            "dynamic ⊆ L3 ⊆ L2 ⊆ L1 ⊆ L0 must hold: {:?}",
            c.apps
                .iter()
                .filter(|a| !a.chain_ok)
                .map(|a| (&a.app, &a.chain_breaks))
                .collect::<Vec<_>>()
        );
        for a in &c.apps {
            // Factors are non-increasing as precision rises, ≥ 1 at
            // the source level.
            for pair in a.levels.windows(2) {
                assert!(
                    pair[0].over_used >= pair[1].over_used,
                    "{}: {} < {}",
                    a.app,
                    pair[0].level.label(),
                    pair[1].level.label()
                );
            }
            assert!(a.level(Level::L3).over_used >= 1.0, "{}", a.app);
            assert!(
                a.level(Level::L3).over_required >= a.level(Level::L3).over_used,
                "{}",
                a.app
            );
            // The paper's headline band: naive binary analysis
            // overestimates every detailed app 2–5×.
            let l0 = a.level(Level::L0).over_used;
            assert!(
                (2.0..=5.0).contains(&l0),
                "{}: L0 factor {l0:.2} outside the paper's 2-5x band",
                a.app
            );
        }
        assert!(
            c.mean_factor_of(Level::L0) > 2.0,
            "binary overestimation too small: {}",
            c.mean_factor_of(Level::L0)
        );
        // Each refinement must actually buy precision on this fleet.
        assert!(c.mean_factor[0] > c.mean_factor[1], "L1 should prune");
        assert!(c.mean_factor[2] > c.mean_factor[3], "L3 should prune");
        for i in 0..4 {
            assert!(c.median_factor[i] <= c.mean_factor[i] * 2.0);
            assert!(c.median_factor[i] >= 1.0);
        }
        // Static plans schedule strictly more implementation work, and
        // more of it the coarser the level.
        for d in &c.plan_deltas {
            assert!(
                d.implemented(Level::L3) >= d.dynamic_implemented,
                "{}",
                d.os
            );
            for pair in Level::ALL.windows(2) {
                assert!(
                    d.implemented(pair[0]) >= d.implemented(pair[1]),
                    "{}: {} < {}",
                    d.os,
                    pair[0].label(),
                    pair[1].label()
                );
            }
            assert!(
                d.binary_waste() > 0,
                "{}: binary plan must waste effort",
                d.os
            );
            assert!(d.dynamic_initial >= d.initial(Level::L0), "{}", d.os);
        }
        assert_eq!(
            c.rank_shifts.len(),
            RANK_SHIFT_ROWS.min(c.rank_shifts.len())
        );
        // Fresh sweeps carry witnesses, so the worked examples exist.
        assert_eq!(c.witness_examples.len(), 2, "{:?}", c.witness_examples);
        assert!(c.witness_examples[0].rendered.contains("crt::_start"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_without_static_reports_names_the_gap() {
        let dir = tmpdir("missing");
        let db = Database::open(&dir).unwrap();
        assert!(matches!(compare(&db), Err(CompareError::NoDynamicReports)));
        Sweep::new(SweepConfig {
            workloads: vec![Workload::HealthCheck],
            ..SweepConfig::default()
        })
        .run(&db, registry::detailed().into_iter().take(1).collect())
        .unwrap();
        match compare(&db) {
            Err(CompareError::MissingStatic { app, .. }) => {
                assert!(!app.is_empty());
            }
            other => panic!("expected MissingStatic, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rendering_is_deterministic_and_mentions_every_app_and_os() {
        let dir = tmpdir("render");
        let db = Database::open(&dir).unwrap();
        let apps = || -> Vec<_> { registry::detailed().into_iter().take(4).collect() };
        Sweep::new(SweepConfig {
            workloads: vec![Workload::HealthCheck],
            ..SweepConfig::default()
        })
        .run(&db, apps())
        .unwrap();
        sweep_static(&db, apps(), 0, false).unwrap();
        let comparisons = compare(&db).unwrap();
        let a = render_static_comparison(&comparisons);
        let b = render_static_comparison(&comparisons);
        assert_eq!(a, b);
        for app in comparisons[0].apps.iter() {
            assert!(a.contains(&format!("| {} |", app.app)), "{} row", app.app);
        }
        for spec in os::db() {
            assert!(
                a.contains(&format!("| {} |", spec.name)),
                "{} row",
                spec.name
            );
        }
        assert!(a.contains("holds for every app"));
        assert!(a.contains("Worked witness examples"));
        assert!(a.contains("L1 (signature-pruned)"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
