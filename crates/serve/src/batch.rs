//! The request batcher: coalesces concurrent verdict lookups into
//! shard passes.
//!
//! Under load, many connection threads ask for verdicts at once. Each
//! lookup is cheap (a hash probe), but resolving them one-by-one
//! interleaves shards arbitrarily; the batcher instead parks arriving
//! lookups for a short window, then drains the whole queue at once,
//! **sorted by shard**, so one drain walks each shard's memory once —
//! and every lookup in a drain is answered from the *same*
//! [`ServeIndex`](crate::index::ServeIndex) snapshot, which also makes
//! a batch immune to a concurrent generation swap.
//!
//! Coalescing is observable in the stats: `batched_lookups` counts
//! lookups, `batches` counts drains; the gap is the win. Answers are
//! byte-identical to the unbatched path — the batcher reorders *work*,
//! never *results* (a property test pins this).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::index::ServeIndex;
use crate::proto::{CellQuery, Verdict};

/// A verdict lookup parked in the batcher, and where to send its
/// answer: `(generation, result)` so the caller can report which index
/// generation answered.
struct Pending {
    query: CellQuery,
    reply: mpsc::SyncSender<(u64, Result<Verdict, String>)>,
}

/// The shared batching queue. One worker thread (spawned by the
/// server) drains it; any number of connection threads submit.
pub struct Batcher {
    queue: Mutex<Vec<Pending>>,
    wake: Condvar,
    window: Duration,
    /// Lookups that went through the batcher.
    pub lookups: AtomicU64,
    /// Drains executed (each one shard-ordered pass over the queue).
    pub batches: AtomicU64,
}

impl Batcher {
    /// A batcher that parks lookups for `window` before draining.
    pub fn new(window: Duration) -> Batcher {
        Batcher {
            queue: Mutex::new(Vec::new()),
            wake: Condvar::new(),
            window,
            lookups: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        }
    }

    /// Submits one lookup and blocks until its drain answers.
    pub fn lookup(&self, query: CellQuery) -> (u64, Result<Verdict, String>) {
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut queue = self.queue.lock().expect("batch queue");
            queue.push(Pending { query, reply: tx });
        }
        self.wake.notify_one();
        self.lookups.fetch_add(1, Ordering::Relaxed);
        rx.recv()
            .unwrap_or_else(|_| (0, Err("batcher shut down".to_owned())))
    }

    /// The drain loop; the server runs this on a dedicated thread.
    /// `snapshot` yields the current index; `shutdown` ends the loop
    /// (any parked lookups are answered with an error by the dropped
    /// senders).
    pub fn run(&self, snapshot: impl Fn() -> Arc<ServeIndex>, shutdown: &AtomicBool) {
        loop {
            let mut queue = self.queue.lock().expect("batch queue");
            while queue.is_empty() && !shutdown.load(Ordering::Acquire) {
                let (q, _) = self
                    .wake
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("batch queue");
                queue = q;
            }
            if shutdown.load(Ordering::Acquire) {
                return;
            }
            drop(queue);
            // The coalescing window: lookups arriving while we sleep
            // join this drain instead of paying their own pass.
            if !self.window.is_zero() {
                std::thread::sleep(self.window);
            }
            let mut drained = {
                let mut queue = self.queue.lock().expect("batch queue");
                std::mem::take(&mut *queue)
            };
            if drained.is_empty() {
                continue;
            }
            // One snapshot for the whole drain, one ordered pass per
            // shard: sort groups same-shard lookups together.
            let index = snapshot();
            drained.sort_by_key(|p| index.shard_of(&p.query.os, &p.query.app));
            let generation = index.generation();
            self.batches.fetch_add(1, Ordering::Relaxed);
            for pending in drained {
                let result = index.verdict(&pending.query);
                // A vanished receiver (client hung up mid-lookup) is
                // not the batcher's problem.
                let _ = pending.reply.send((generation, result));
            }
        }
    }

    /// Wakes the drain loop so it observes a shutdown flag.
    pub fn interrupt(&self) {
        self.wake.notify_one();
    }
}
