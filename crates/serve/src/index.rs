//! The immutable in-memory query index one daemon generation serves.
//!
//! A [`ServeIndex`] is built once from a database snapshot and then
//! only read: the server swaps whole indices (behind an `RwLock<Arc>`)
//! when the generation watcher sees the database change, so readers
//! never contend with an in-place update and a multi-lookup request
//! answered from one `Arc` can never observe a torn mix of
//! generations.
//!
//! Layout:
//!
//! * **Verdict shards** — every stored matrix cell, precomputed into a
//!   per-tier pass/fail verdict and spread over [`SHARDS`] hash shards
//!   keyed by `(os, app)`. Built eagerly: verdicts are the hot path.
//! * **Summary + missing-syscall rankings** — the `OS_MATRIX.md`
//!   aggregation ([`loupe_sweep::matrix::aggregate`], so the daemon
//!   and the rendered docs can never disagree), also eager.
//! * **Plan table + inverted syscall index** — derived from the
//!   *baselines* namespace, which plan/apps queries alone need; built
//!   lazily on first touch so a daemon serving only verdicts never
//!   decodes a baseline (the database below additionally decodes its
//!   mapped snapshots per-entry on demand).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

use loupe_apps::Workload;
use loupe_db::{Database, DbError};
use loupe_plan::{os, SupportPlan, Tier};
use loupe_sweep::matrix::{aggregate, os_sizes};
use loupe_syscalls::SysnoSet;

use crate::proto::{
    CellQuery, MissingSyscall, OsSummary, PlanReply, PlanStepReply, Request, Response, Verdict,
};

/// Number of verdict shards. A power of two so the hash mixes cheaply;
/// sized for a few hundred cells per shard at fleet scale.
pub const SHARDS: usize = 16;

/// FNV-1a over `(os, NUL, app)` — the shard key.
fn shard_hash(os: &str, app: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in os
        .as_bytes()
        .iter()
        .chain([0u8].iter())
        .chain(app.as_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Precomputed verdicts of one matrix cell: both tiers, ready to copy
/// into a wire [`Verdict`] without touching the cell again.
#[derive(Debug, Clone)]
struct CellVerdicts {
    linux_pass: bool,
    vanilla_pass: bool,
    /// Best-known planned verdict ([`loupe_plan::MatrixCell::planned_at_least`]),
    /// exactly what the OS_MATRIX "with plan" column counts.
    planned_pass: bool,
    first_rejection_vanilla: Option<String>,
    first_rejection_planned: Option<String>,
    missing_required: Vec<String>,
}

#[derive(Debug, Default)]
struct Shard {
    /// `(os, app, workload-label)` → precomputed verdicts.
    cells: HashMap<(String, String, String), CellVerdicts>,
}

/// Lazily built analytics over the baselines namespace: support plans
/// and the syscall → requiring-apps inverted index.
#[derive(Debug, Default)]
struct Analytics {
    /// `(os, workload-label)` → served plan.
    plans: BTreeMap<(String, String), PlanReply>,
    /// Syscall name → apps whose *required* set contains it (any
    /// workload, deduplicated, sorted).
    by_syscall: BTreeMap<String, Vec<String>>,
}

/// One generation's immutable query index. See the module docs.
pub struct ServeIndex {
    generation: u64,
    shards: Vec<Shard>,
    summary: Vec<OsSummary>,
    /// `(os, workload-label)` → ranked missing syscalls.
    missing: BTreeMap<(String, String), Vec<MissingSyscall>>,
    oses: BTreeSet<String>,
    apps: BTreeSet<String>,
    cells: usize,
    /// Handle for the lazy analytics build only.
    db: Database,
    analytics: Mutex<Option<Arc<Analytics>>>,
}

impl std::fmt::Debug for ServeIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeIndex")
            .field("generation", &self.generation)
            .field("cells", &self.cells)
            .field("oses", &self.oses.len())
            .field("apps", &self.apps.len())
            .finish()
    }
}

fn names(set: &SysnoSet) -> Vec<String> {
    set.iter().map(|s| s.name().to_owned()).collect()
}

/// Parses a workload label, defaulting to `health`.
pub fn parse_workload(label: Option<&str>) -> Result<Workload, String> {
    match label {
        None => Ok(Workload::HealthCheck),
        Some(l) => Workload::ALL
            .iter()
            .copied()
            .find(|w| w.label() == l)
            .ok_or_else(|| format!("unknown workload `{l}` (health/bench/suite)")),
    }
}

/// Parses a tier label, defaulting to `planned`.
pub fn parse_tier(label: Option<&str>) -> Result<Tier, String> {
    match label {
        None => Ok(Tier::Planned),
        Some(l) => {
            Tier::from_label(l).ok_or_else(|| format!("unknown tier `{l}` (vanilla/planned)"))
        }
    }
}

impl ServeIndex {
    /// Builds the index from the database's current matrix contents,
    /// stamping it with `generation` (the server's rebuild counter).
    ///
    /// # Errors
    ///
    /// Database I/O and corruption errors.
    pub fn build(db: Database, generation: u64) -> Result<ServeIndex, DbError> {
        let cells = db.load_matrix()?;
        let mut shards: Vec<Shard> = (0..SHARDS).map(|_| Shard::default()).collect();
        let mut oses = BTreeSet::new();
        let mut apps = BTreeSet::new();
        for cell in &cells {
            oses.insert(cell.os.clone());
            apps.insert(cell.app.clone());
            let verdicts = CellVerdicts {
                linux_pass: cell.linux_pass,
                vanilla_pass: cell.passes(Tier::Vanilla),
                planned_pass: cell.planned_at_least(),
                first_rejection_vanilla: cell.vanilla.as_ref().and_then(|t| t.first_cause()),
                first_rejection_planned: cell.planned.as_ref().and_then(|t| t.first_cause()),
                missing_required: names(&cell.missing_required),
            };
            let shard = (shard_hash(&cell.os, &cell.app) % SHARDS as u64) as usize;
            shards[shard].cells.insert(
                (
                    cell.os.clone(),
                    cell.app.clone(),
                    cell.workload.label().to_owned(),
                ),
                verdicts,
            );
        }

        // Profile sizes: the curated specs, plus any custom OS stored in
        // the database; unknown OSes render 0 like the docs do.
        let mut sizes = os_sizes(&os::db());
        for name in &oses {
            if !sizes.contains_key(name) {
                if let Ok(Some(spec)) = db.load_os_spec(name) {
                    sizes.insert(name.clone(), spec.supported.len());
                }
            }
        }
        let stats = aggregate(&cells, &sizes);
        let mut missing = BTreeMap::new();
        let summary = stats
            .iter()
            .map(|row| {
                missing.insert(
                    (row.os.clone(), row.workload.label().to_owned()),
                    row.top_missing
                        .iter()
                        .map(|(sysno, count)| MissingSyscall {
                            syscall: sysno.name().to_owned(),
                            blocked_apps: *count as u64,
                        })
                        .collect(),
                );
                OsSummary {
                    os: row.os.clone(),
                    workload: row.workload.label().to_owned(),
                    syscalls: row.syscalls as u64,
                    apps: row.apps as u64,
                    linux_pass: row.linux_pass as u64,
                    vanilla_pass: row.vanilla_pass as u64,
                    planned_pass: row.planned_pass as u64,
                }
            })
            .collect();

        Ok(ServeIndex {
            generation,
            shards,
            summary,
            missing,
            oses,
            apps,
            cells: cells.len(),
            db,
            analytics: Mutex::new(None),
        })
    }

    /// The generation stamp this index was built at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Matrix cells indexed.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Distinct OS names indexed.
    pub fn os_count(&self) -> usize {
        self.oses.len()
    }

    /// Distinct app names indexed.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// The shard a query for `(os, app)` resolves in — exposed so the
    /// batcher can group lookups into per-shard passes.
    pub fn shard_of(&self, os: &str, app: &str) -> usize {
        (shard_hash(os, app) % SHARDS as u64) as usize
    }

    /// Resolves one verdict lookup. Unknown OS or app names are
    /// errors (they distinguish typos from unmeasured combinations);
    /// a known OS and app without a stored cell yields
    /// `known == false`.
    ///
    /// # Errors
    ///
    /// Unknown OS, app, workload or tier labels.
    pub fn verdict(&self, query: &CellQuery) -> Result<Verdict, String> {
        let workload = parse_workload(query.workload.as_deref())?;
        let tier = parse_tier(query.tier.as_deref())?;
        if !self.oses.contains(&query.os) {
            return Err(format!("unknown os `{}`", query.os));
        }
        if !self.apps.contains(&query.app) {
            return Err(format!("unknown app `{}`", query.app));
        }
        let shard = &self.shards[self.shard_of(&query.os, &query.app)];
        let key = (
            query.os.clone(),
            query.app.clone(),
            workload.label().to_owned(),
        );
        let mut verdict = Verdict {
            os: query.os.clone(),
            app: query.app.clone(),
            workload: workload.label().to_owned(),
            tier: tier.label().to_owned(),
            ..Verdict::default()
        };
        if let Some(cell) = shard.cells.get(&key) {
            verdict.known = true;
            verdict.linux_pass = cell.linux_pass;
            verdict.pass = match tier {
                Tier::Vanilla => cell.vanilla_pass,
                Tier::Planned => cell.planned_pass,
            };
            verdict.first_rejection = if verdict.pass {
                None
            } else {
                match tier {
                    Tier::Vanilla => cell.first_rejection_vanilla.clone(),
                    Tier::Planned => cell
                        .first_rejection_planned
                        .clone()
                        .or_else(|| cell.first_rejection_vanilla.clone()),
                }
            };
            verdict.missing_required = cell.missing_required.clone();
        }
        Ok(verdict)
    }

    /// The fleet pass-rate summary — one row per `(os, workload)`,
    /// byte-for-byte the aggregation `OS_MATRIX.md` renders.
    pub fn summary(&self) -> &[OsSummary] {
        &self.summary
    }

    /// Top missing syscalls blocking apps on `os`, most-blocking first.
    ///
    /// # Errors
    ///
    /// Unknown OS or workload labels.
    pub fn missing(
        &self,
        os: &str,
        workload: Option<&str>,
        limit: usize,
    ) -> Result<Vec<MissingSyscall>, String> {
        let workload = parse_workload(workload)?;
        if !self.oses.contains(os) {
            return Err(format!("unknown os `{os}`"));
        }
        Ok(self
            .missing
            .get(&(os.to_owned(), workload.label().to_owned()))
            .map(|ranked| ranked.iter().take(limit).cloned().collect())
            .unwrap_or_default())
    }

    /// The cheapest incremental support plan for `os`, derived from
    /// the stored baselines (lazy; see module docs).
    ///
    /// # Errors
    ///
    /// Unknown OS/workload, plus database errors from the first
    /// (index-building) call.
    pub fn plan(&self, os_name: &str, workload: Option<&str>) -> Result<PlanReply, String> {
        let workload = parse_workload(workload)?;
        let analytics = self.analytics()?;
        analytics
            .plans
            .get(&(os_name.to_owned(), workload.label().to_owned()))
            .cloned()
            .ok_or_else(|| format!("no plan for os `{os_name}` (not a curated profile, or no stored baselines for workload `{workload}`)"))
    }

    /// Apps whose measured *required* set contains `syscall` (lazy).
    ///
    /// # Errors
    ///
    /// Unknown syscall names, plus database errors from the first call.
    pub fn apps_requiring(&self, syscall: &str) -> Result<Vec<String>, String> {
        if loupe_syscalls::Sysno::from_name(syscall).is_none() {
            return Err(format!("unknown syscall `{syscall}`"));
        }
        let analytics = self.analytics()?;
        Ok(analytics
            .by_syscall
            .get(syscall)
            .cloned()
            .unwrap_or_default())
    }

    /// Forces the lazy analytics build (the `--eager` startup path).
    ///
    /// # Errors
    ///
    /// Database errors reading the baselines namespace.
    pub fn warm_analytics(&self) -> Result<(), String> {
        self.analytics().map(|_| ())
    }

    /// Answers a protocol request straight from this index — the
    /// daemon-free resolution path `loupe query --offline` uses, and
    /// exactly what the daemon computes for each command (the daemon
    /// adds batching and counters on top). `stats` counters belong to
    /// a daemon and fail here.
    pub fn answer(&self, req: &Request) -> Response {
        let generation = Some(self.generation);
        match req.cmd.as_str() {
            "ping" => Response {
                ok: true,
                generation,
                ..Response::default()
            },
            "verdict" => {
                let (Some(os), Some(app)) = (req.os.clone(), req.app.clone()) else {
                    return Response::fail("verdict needs `os` and `app`");
                };
                let query = CellQuery {
                    os,
                    app,
                    workload: req.workload.clone(),
                    tier: req.tier.clone(),
                };
                match self.verdict(&query) {
                    Ok(verdict) => Response {
                        ok: true,
                        generation,
                        verdict: Some(verdict),
                        ..Response::default()
                    },
                    Err(e) => Response::fail(e),
                }
            }
            "verdicts" => {
                let mut verdicts = Vec::with_capacity(req.cells.len());
                for query in &req.cells {
                    match self.verdict(query) {
                        Ok(v) => verdicts.push(v),
                        Err(e) => return Response::fail(e),
                    }
                }
                Response {
                    ok: true,
                    generation,
                    verdicts,
                    ..Response::default()
                }
            }
            "plan" => {
                let Some(os) = req.os.as_deref() else {
                    return Response::fail("plan needs `os`");
                };
                match self.plan(os, req.workload.as_deref()) {
                    Ok(plan) => Response {
                        ok: true,
                        generation,
                        plan: Some(plan),
                        ..Response::default()
                    },
                    Err(e) => Response::fail(e),
                }
            }
            "missing" => {
                let Some(os) = req.os.as_deref() else {
                    return Response::fail("missing needs `os`");
                };
                let limit = req.limit.unwrap_or(10) as usize;
                match self.missing(os, req.workload.as_deref(), limit) {
                    Ok(missing) => Response {
                        ok: true,
                        generation,
                        missing,
                        ..Response::default()
                    },
                    Err(e) => Response::fail(e),
                }
            }
            "summary" => Response {
                ok: true,
                generation,
                summary: self.summary.clone(),
                ..Response::default()
            },
            "apps" => {
                let Some(syscall) = req.syscall.as_deref() else {
                    return Response::fail("apps needs `syscall`");
                };
                match self.apps_requiring(syscall) {
                    Ok(apps) => Response {
                        ok: true,
                        generation,
                        apps,
                        ..Response::default()
                    },
                    Err(e) => Response::fail(e),
                }
            }
            "stats" => Response::fail("stats needs a running daemon"),
            other => Response::fail(format!("unknown command `{other}`")),
        }
    }

    fn analytics(&self) -> Result<Arc<Analytics>, String> {
        let mut slot = self.analytics.lock().expect("analytics lock");
        if let Some(built) = slot.as_ref() {
            return Ok(Arc::clone(built));
        }
        let built = Arc::new(self.build_analytics().map_err(|e| e.to_string())?);
        *slot = Some(Arc::clone(&built));
        Ok(built)
    }

    fn build_analytics(&self) -> Result<Analytics, DbError> {
        let mut analytics = Analytics::default();
        let mut by_syscall: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for &workload in Workload::ALL {
            let reqs = self.db.requirements(workload)?;
            if reqs.is_empty() {
                continue;
            }
            for req in &reqs {
                for sysno in req.required.iter() {
                    by_syscall
                        .entry(sysno.name().to_owned())
                        .or_default()
                        .insert(req.app.clone());
                }
            }
            // Plans for every curated profile plus any custom OS spec
            // stored in the database.
            let mut specs = os::db();
            for name in &self.oses {
                if os::find(name).is_none() {
                    if let Ok(Some(spec)) = self.db.load_os_spec(name) {
                        specs.push(spec);
                    }
                }
            }
            for spec in &specs {
                let plan = SupportPlan::generate(spec, &reqs);
                analytics.plans.insert(
                    (spec.name.clone(), workload.label().to_owned()),
                    PlanReply {
                        os: spec.name.clone(),
                        workload: workload.label().to_owned(),
                        initially_supported: plan.initially_supported.clone(),
                        steps: plan
                            .steps
                            .iter()
                            .map(|step| PlanStepReply {
                                index: step.index as u64,
                                implement: names(&step.implement),
                                stub: names(&step.stub),
                                fake: names(&step.fake),
                                unlocks: step.unlocks.clone(),
                            })
                            .collect(),
                    },
                );
            }
        }
        analytics.by_syscall = by_syscall
            .into_iter()
            .map(|(sysno, apps)| (sysno, apps.into_iter().collect()))
            .collect();
        Ok(analytics)
    }
}
