//! `loupe serve`: a long-running daemon answering compatibility
//! queries out of sharded, immutable in-memory indices.
//!
//! The sweep pipeline measures; this crate *answers*. A fleet
//! dashboard, a CI gate or a porting engineer asks "will app X run on
//! OS Y at tier T?", "what is the cheapest support plan?", "which
//! syscalls block the most apps?" — each of which the database can
//! answer only by loading and re-aggregating namespaces. The daemon
//! does that work once per database generation:
//!
//! * startup loads the database (binary snapshots mapped, decoded
//!   lazily) and compiles the matrix namespace into [`index::SHARDS`]
//!   hash shards of precomputed per-tier verdicts plus the
//!   `OS_MATRIX.md` aggregation — reads after that touch no disk;
//! * plan and inverted-syscall queries build their (baselines-backed)
//!   tables on first touch, so a verdict-only daemon never decodes a
//!   baseline;
//! * a watcher polls the manifest fingerprint and swaps in a freshly
//!   built index when the database changes — queries see the old or
//!   the new generation, never a mix;
//! * concurrent verdict lookups coalesce in a short batching window
//!   into shard-ordered passes ([`batch::Batcher`]).
//!
//! The wire protocol ([`proto`]) is length-prefixed JSON over TCP —
//! std-only, no async runtime, speakable from any language.

pub mod batch;
pub mod client;
pub mod index;
pub mod proto;
pub mod server;

pub use client::Client;
pub use index::ServeIndex;
pub use proto::{CellQuery, Request, Response, Verdict};
pub use server::{ServeConfig, ServeError, Server};
