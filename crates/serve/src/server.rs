//! The serve daemon: TCP listener, connection threads, request
//! dispatch, and the generation watcher that rebuilds the index when
//! the database changes underneath it.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use loupe_db::{Database, DbError};

use crate::batch::Batcher;
use crate::index::ServeIndex;
use crate::proto::{self, CellQuery, Request, Response, ServeStats};

/// Server startup errors.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or filesystem failure.
    Io(io::Error),
    /// Database failure while building the index.
    Db(DbError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::Db(e) => write!(f, "serve database error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<DbError> for ServeError {
    fn from(e: DbError) -> Self {
        ServeError::Db(e)
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Maximum concurrent connection-handler threads.
    pub threads: usize,
    /// Batching window for verdict lookups; zero answers each lookup
    /// directly (unbatched).
    pub batch_window: Duration,
    /// Database poll interval for the generation watcher; zero
    /// disables watching.
    pub watch_interval: Duration,
    /// Build the lazy analytics (plans, inverted syscall index) at
    /// startup instead of on first touch.
    pub eager: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 1024,
            batch_window: Duration::from_micros(50),
            watch_interval: Duration::from_millis(200),
            eager: false,
        }
    }
}

/// FNV-1a over the manifest bytes: the database-change signal. The
/// manifest is rewritten (atomically) on every flush that changed
/// anything, so its bytes fingerprint the database state.
fn manifest_fingerprint(root: &Path) -> u64 {
    let Ok(bytes) = std::fs::read(root.join("manifest.json")) else {
        return 0;
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// State shared by every server thread.
struct Shared {
    root: PathBuf,
    index: RwLock<Arc<ServeIndex>>,
    batcher: Batcher,
    batching: bool,
    eager: bool,
    shutdown: AtomicBool,
    requests: AtomicU64,
    rebuilds: AtomicU64,
    /// Free connection-handler slots (bounds thread count).
    slots: Mutex<usize>,
    slot_freed: Condvar,
}

impl Shared {
    fn snapshot(&self) -> Arc<ServeIndex> {
        Arc::clone(&self.index.read().expect("index lock"))
    }

    /// Rebuilds the index from a freshly opened database and swaps it
    /// in. A fresh open (not the original handle) so the new index
    /// sees namespaces exactly as the manifest on disk records them.
    fn rebuild(&self) -> Result<(), ServeError> {
        let generation = self.snapshot().generation() + 1;
        let db = Database::open(&self.root)?;
        let next = Arc::new(ServeIndex::build(db, generation)?);
        if self.eager {
            next.warm_analytics()
                .map_err(|e| ServeError::Io(io::Error::other(e)))?;
        }
        *self.index.write().expect("index lock") = next;
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn handle(&self, req: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match req.cmd.as_str() {
            // Coalescible verdict lookups go through the batcher; the
            // batcher resolves them with the same `ServeIndex::verdict`
            // the direct path uses, so the answers are byte-identical.
            "verdict" if self.batching => {
                let (Some(os), Some(app)) = (req.os.clone(), req.app.clone()) else {
                    return Response::fail("verdict needs `os` and `app`");
                };
                let query = CellQuery {
                    os,
                    app,
                    workload: req.workload.clone(),
                    tier: req.tier.clone(),
                };
                let (generation, result) = self.batcher.lookup(query);
                match result {
                    Ok(verdict) => Response {
                        ok: true,
                        generation: Some(generation),
                        verdict: Some(verdict),
                        ..Response::default()
                    },
                    Err(e) => Response::fail(e),
                }
            }
            // Daemon counters live here, not in the index.
            "stats" => {
                let index = self.snapshot();
                Response {
                    ok: true,
                    generation: Some(index.generation()),
                    stats: Some(ServeStats {
                        generation: index.generation(),
                        cells: index.cells() as u64,
                        oses: index.os_count() as u64,
                        apps: index.app_count() as u64,
                        requests: self.requests.load(Ordering::Relaxed),
                        batched_lookups: self.batcher.lookups.load(Ordering::Relaxed),
                        batches: self.batcher.batches.load(Ordering::Relaxed),
                        rebuilds: self.rebuilds.load(Ordering::Relaxed),
                    }),
                    ..Response::default()
                }
            }
            // Everything else resolves against ONE index snapshot
            // (multi-cell answers can never mix generations, even
            // mid-rebuild) — the same resolution `loupe query
            // --offline` runs without a daemon.
            _ => self.snapshot().answer(req),
        }
    }
}

/// Serves one connection: a request/response loop until EOF. Malformed
/// JSON gets an error response; frame-level I/O errors end the
/// connection.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    while let Ok(Some(payload)) = proto::read_frame(&mut stream) {
        let response = match serde_json::from_str::<Request>(&payload) {
            Ok(req) => shared.handle(&req),
            Err(e) => Response::fail(format!("malformed request: {e}")),
        };
        let Ok(json) = serde_json::to_string(&response) else {
            break;
        };
        if proto::write_frame(&mut stream, &json).is_err() {
            break;
        }
    }
}

/// A running serve daemon. Dropping it (or calling [`Server::stop`])
/// shuts the listener, watcher and batcher down.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Opens the database under `root`, builds the first index
    /// generation and starts listening.
    ///
    /// # Errors
    ///
    /// Bind failures and database errors.
    pub fn start(root: impl AsRef<Path>, cfg: ServeConfig) -> Result<Server, ServeError> {
        let root = root.as_ref().to_path_buf();
        let db = Database::open(&root)?;
        let index = ServeIndex::build(db, 0)?;
        if cfg.eager {
            index
                .warm_analytics()
                .map_err(|e| ServeError::Io(io::Error::other(e)))?;
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            root,
            index: RwLock::new(Arc::new(index)),
            batcher: Batcher::new(cfg.batch_window),
            batching: !cfg.batch_window.is_zero(),
            eager: cfg.eager,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            slots: Mutex::new(cfg.threads.max(1)),
            slot_freed: Condvar::new(),
        });
        let mut threads = Vec::new();

        // Accept loop: thread-per-connection with small stacks (the
        // handler's frame is shallow), bounded by the slot counter so
        // `--threads` caps memory under a connection flood.
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    // Answers are single small frames; never let Nagle
                    // hold one back waiting for a delayed ACK.
                    stream.set_nodelay(true).ok();
                    let mut slots = shared.slots.lock().expect("slots");
                    while *slots == 0 {
                        slots = shared.slot_freed.wait(slots).expect("slots");
                    }
                    *slots -= 1;
                    drop(slots);
                    let conn_shared = Arc::clone(&shared);
                    let spawned =
                        std::thread::Builder::new()
                            .stack_size(64 * 1024)
                            .spawn(move || {
                                serve_connection(&conn_shared, stream);
                                *conn_shared.slots.lock().expect("slots") += 1;
                                conn_shared.slot_freed.notify_one();
                            });
                    if spawned.is_err() {
                        // Spawn failure: hand the slot back and drop
                        // the connection.
                        let mut slots = shared.slots.lock().expect("slots");
                        *slots += 1;
                        shared.slot_freed.notify_one();
                    }
                }
            }));
        }

        // Batcher drain loop.
        if !cfg.batch_window.is_zero() {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                let snap_handle = Arc::clone(&shared);
                let snap = move || snap_handle.snapshot();
                shared.batcher.run(snap, &shared.shutdown);
            }));
        }

        // Generation watcher: polls the manifest fingerprint and swaps
        // in a freshly built index when it changes.
        if !cfg.watch_interval.is_zero() {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                let mut last = manifest_fingerprint(&shared.root);
                while !shared.shutdown.load(Ordering::Acquire) {
                    std::thread::sleep(cfg.watch_interval);
                    let current = manifest_fingerprint(&shared.root);
                    if current != last {
                        // Rebuild failures (e.g. a writer mid-flight)
                        // leave the previous generation serving; the
                        // next poll retries.
                        if shared.rebuild().is_ok() {
                            last = current;
                        }
                    }
                }
            }));
        }

        Ok(Server {
            shared,
            addr,
            threads,
        })
    }

    /// The bound address (with the actual port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Served requests so far.
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Forces an index rebuild now (bypassing the watcher) — for tests
    /// and tooling.
    ///
    /// # Errors
    ///
    /// Database errors while rebuilding.
    pub fn rebuild_now(&self) -> Result<(), ServeError> {
        self.shared.rebuild()
    }

    /// Stops the daemon: listener, watcher and batcher threads exit;
    /// in-flight connection threads finish their current
    /// request/response and end with their client.
    pub fn stop(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.batcher.interrupt();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
