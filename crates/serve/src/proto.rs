//! The serve wire protocol: length-prefixed JSON frames over TCP.
//!
//! A frame is a `u32` little-endian byte length followed by exactly
//! that many bytes of UTF-8 JSON. Requests and responses are flat
//! structs (a `cmd` discriminator plus optional fields) so any JSON
//! client can speak the protocol without a schema compiler; absent
//! fields default.
//!
//! Commands:
//!
//! | `cmd`      | asks                                            |
//! |------------|-------------------------------------------------|
//! | `ping`     | liveness + current index generation             |
//! | `verdict`  | will `app` run on `os` (`workload`, `tier`)?    |
//! | `verdicts` | many verdicts, answered from ONE index snapshot |
//! | `plan`     | cheapest support plan for `os` (`workload`)     |
//! | `missing`  | top missing syscalls blocking apps on `os`      |
//! | `summary`  | fleet pass-rate summary (OS_MATRIX rows)        |
//! | `apps`     | which apps require `syscall`                    |
//! | `stats`    | daemon counters (requests, batches, rebuilds)   |

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

/// Frames larger than this are rejected — no legitimate query or
/// answer comes close, and the cap keeps a garbage length prefix from
/// allocating gigabytes.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects oversized payloads.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    // One write for prefix + payload: a frame never straddles two
    // small TCP segments (two writes + Nagle + delayed ACK stalls a
    // roundtrip for tens of milliseconds).
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload.as_bytes());
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` on clean EOF before a length prefix —
/// the peer hung up between requests.
///
/// # Errors
///
/// I/O errors, truncated frames, oversized lengths, invalid UTF-8.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated frame length",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// One cell lookup inside a `verdicts` batch (and the unit the request
/// batcher coalesces).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CellQuery {
    /// OS name.
    pub os: String,
    /// Application name.
    pub app: String,
    /// Workload label (`health`/`bench`/`suite`); defaults to `health`.
    #[serde(default)]
    pub workload: Option<String>,
    /// Tier label (`vanilla`/`planned`); defaults to `planned`.
    #[serde(default)]
    pub tier: Option<String>,
}

/// A client request: `cmd` picks the command, the rest parameterise it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Request {
    /// Command discriminator (see module docs).
    pub cmd: String,
    /// OS name (`verdict`, `plan`, `missing`).
    #[serde(default)]
    pub os: Option<String>,
    /// Application name (`verdict`).
    #[serde(default)]
    pub app: Option<String>,
    /// Workload label; commands default to `health`.
    #[serde(default)]
    pub workload: Option<String>,
    /// Tier label; `verdict` defaults to `planned`.
    #[serde(default)]
    pub tier: Option<String>,
    /// Syscall name (`apps`).
    #[serde(default)]
    pub syscall: Option<String>,
    /// Result cap (`missing`); defaults to 10.
    #[serde(default)]
    pub limit: Option<u64>,
    /// Batch of lookups (`verdicts`).
    #[serde(default)]
    pub cells: Vec<CellQuery>,
}

/// One resolved compatibility verdict.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Verdict {
    /// OS queried.
    pub os: String,
    /// Application queried.
    pub app: String,
    /// Workload label resolved.
    pub workload: String,
    /// Tier label resolved.
    pub tier: String,
    /// A measured matrix cell exists for this `(os, app, workload)`.
    pub known: bool,
    /// The app passes at the requested tier (`false` when unknown).
    pub pass: bool,
    /// The full-Linux reference verdict.
    pub linux_pass: bool,
    /// First syscall the restricted kernel rejected, when it failed.
    #[serde(default)]
    pub first_rejection: Option<String>,
    /// Required syscalls the OS does not implement.
    #[serde(default)]
    pub missing_required: Vec<String>,
}

/// One step of a served support plan.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlanStepReply {
    /// 1-based step index.
    pub index: u64,
    /// Syscall names to implement for real.
    pub implement: Vec<String>,
    /// Syscall names to stub.
    pub stub: Vec<String>,
    /// Syscall names to fake.
    pub fake: Vec<String>,
    /// Application the step unlocks.
    pub unlocks: String,
}

/// The cheapest incremental support plan for one OS.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlanReply {
    /// Target OS.
    pub os: String,
    /// Workload the requirements were distilled from.
    pub workload: String,
    /// Apps supported before any work.
    pub initially_supported: Vec<String>,
    /// Ordered steps, cheapest-first.
    pub steps: Vec<PlanStepReply>,
}

/// One missing-syscall ranking row.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MissingSyscall {
    /// Syscall name.
    pub syscall: String,
    /// Failing apps that require it.
    pub blocked_apps: u64,
}

/// One fleet summary row — mirrors an `OS_MATRIX.md` table row.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OsSummary {
    /// OS name.
    pub os: String,
    /// Workload label.
    pub workload: String,
    /// Syscalls the OS implements.
    pub syscalls: u64,
    /// Apps measured.
    pub apps: u64,
    /// Apps passing the full-Linux reference.
    pub linux_pass: u64,
    /// Apps passing out of the box.
    pub vanilla_pass: u64,
    /// Apps passing with the plan's stub/fake guidance.
    pub planned_pass: u64,
}

/// Daemon counters.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Index generation currently served.
    pub generation: u64,
    /// Matrix cells indexed.
    pub cells: u64,
    /// Distinct OSes indexed.
    pub oses: u64,
    /// Distinct apps indexed.
    pub apps: u64,
    /// Requests answered.
    pub requests: u64,
    /// Verdict lookups that went through the batcher.
    pub batched_lookups: u64,
    /// Shard passes the batcher ran (≤ batched_lookups; the gap is
    /// coalescing).
    pub batches: u64,
    /// Index rebuilds triggered by the generation watcher.
    pub rebuilds: u64,
}

/// A server response. `ok == false` carries `error`; everything else
/// fills the field matching the request's command.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Response {
    /// Did the request resolve?
    pub ok: bool,
    /// Failure reason when `ok == false`.
    #[serde(default)]
    pub error: Option<String>,
    /// Index generation the answer was computed from.
    #[serde(default)]
    pub generation: Option<u64>,
    /// `verdict` answer.
    #[serde(default)]
    pub verdict: Option<Verdict>,
    /// `verdicts` answers, in request order.
    #[serde(default)]
    pub verdicts: Vec<Verdict>,
    /// `plan` answer.
    #[serde(default)]
    pub plan: Option<PlanReply>,
    /// `missing` answer.
    #[serde(default)]
    pub missing: Vec<MissingSyscall>,
    /// `summary` answer.
    #[serde(default)]
    pub summary: Vec<OsSummary>,
    /// `apps` answer.
    #[serde(default)]
    pub apps: Vec<String>,
    /// `stats` answer.
    #[serde(default)]
    pub stats: Option<ServeStats>,
}

impl Response {
    /// A failure response.
    pub fn fail(error: impl Into<String>) -> Response {
        Response {
            ok: false,
            error: Some(error.into()),
            ..Response::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"cmd\":\"ping\"}").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("{\"cmd\":\"ping\"}")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_error() {
        let mut r = io::Cursor::new(vec![5, 0, 0, 0, b'a']);
        assert!(read_frame(&mut r).is_err(), "payload shorter than prefix");
        let mut r = io::Cursor::new(vec![1, 0]);
        assert!(read_frame(&mut r).is_err(), "truncated prefix");
        let mut r = io::Cursor::new((u32::MAX).to_le_bytes().to_vec());
        assert!(read_frame(&mut r).is_err(), "oversized length rejected");
    }

    #[test]
    fn requests_parse_with_defaults() {
        let req: Request =
            serde_json::from_str("{\"cmd\":\"verdict\",\"os\":\"kerla\",\"app\":\"redis\"}")
                .unwrap();
        assert_eq!(req.cmd, "verdict");
        assert_eq!(req.os.as_deref(), Some("kerla"));
        assert_eq!(req.workload, None);
        assert!(req.cells.is_empty());

        let text = serde_json::to_string(&Response::fail("nope")).unwrap();
        let resp: Response = serde_json::from_str(&text).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.error.as_deref(), Some("nope"));
    }
}
