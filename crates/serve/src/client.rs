//! A minimal blocking client for the serve protocol.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{self, Request, Response};

/// One connection to a serve daemon; requests are answered in order.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sets a per-request read timeout (never waits forever on a hung
    /// daemon).
    ///
    /// # Errors
    ///
    /// Socket option failures.
    pub fn set_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))
    }

    /// Sends a raw JSON payload and returns the raw JSON answer —
    /// the byte-level interface the equivalence tests compare on.
    ///
    /// # Errors
    ///
    /// I/O errors and a daemon that hangs up mid-request.
    pub fn request_raw(&mut self, payload: &str) -> io::Result<String> {
        proto::write_frame(&mut self.stream, payload)?;
        proto::read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })
    }

    /// Sends a typed request and parses the typed response.
    ///
    /// # Errors
    ///
    /// I/O errors and malformed response JSON.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        let payload = serde_json::to_string(request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let answer = self.request_raw(&payload)?;
        serde_json::from_str(&answer)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Liveness probe; returns the daemon's index generation.
    ///
    /// # Errors
    ///
    /// I/O errors and non-ok responses.
    pub fn ping(&mut self) -> io::Result<u64> {
        let response = self.request(&Request {
            cmd: "ping".to_owned(),
            ..Request::default()
        })?;
        if !response.ok {
            return Err(io::Error::other(
                response.error.unwrap_or_else(|| "ping failed".to_owned()),
            ));
        }
        Ok(response.generation.unwrap_or(0))
    }
}
