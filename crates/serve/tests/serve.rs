//! End-to-end daemon tests: protocol answers against a populated
//! corpus, exhaustive daemon-vs-database cross-checks, batched ==
//! unbatched equivalence, and generation-swap atomicity under
//! concurrent database edits.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use loupe_apps::{registry, Workload};
use loupe_db::Database;
use loupe_plan::{os, MatrixCell, Tier, TierOutcome};
use loupe_serve::{CellQuery, Client, Request, ServeConfig, Server};
use loupe_sweep::{MatrixConfig, SweepConfig};
use loupe_syscalls::SysnoSet;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("loupe-serve-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A real mini-corpus: baselines + matrix cells for 2 OSes × 4 apps,
/// measured by the actual sweep so plan/apps queries have requirements
/// to work from.
fn populate(dir: &Path) {
    let db = Database::open(dir).unwrap();
    let apps: Vec<_> = registry::detailed().into_iter().take(4).collect();
    let cfg = MatrixConfig {
        oses: vec![os::find("kerla").unwrap(), os::find("gvisor").unwrap()],
        tier: None,
        sweep: SweepConfig {
            workloads: vec![Workload::HealthCheck],
            workers: 2,
            ..SweepConfig::default()
        },
    };
    loupe_sweep::sweep_matrix(&db, apps, &cfg).unwrap();
    db.flush().unwrap();
}

fn start(dir: &Path, cfg: ServeConfig) -> Server {
    Server::start(dir, cfg).expect("server starts")
}

fn connect(addr: SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client.set_timeout(Duration::from_secs(30)).unwrap();
    client
}

fn verdict_request(os: &str, app: &str, workload: Option<&str>, tier: Option<&str>) -> Request {
    Request {
        cmd: "verdict".to_owned(),
        os: Some(os.to_owned()),
        app: Some(app.to_owned()),
        workload: workload.map(str::to_owned),
        tier: tier.map(str::to_owned),
        ..Request::default()
    }
}

#[test]
fn daemon_answers_the_documented_queries() {
    let dir = tmpdir("e2e");
    populate(&dir);
    let db = Database::open(&dir).unwrap();
    let cells = db.load_matrix().unwrap();
    assert_eq!(cells.len(), 8, "fixture: 2 OSes x 4 apps x 1 workload");

    let server = start(&dir, ServeConfig::default());
    let mut client = connect(server.local_addr());

    assert_eq!(client.ping().unwrap(), 0, "first generation");

    // Verdicts match the stored cells for both tiers.
    for cell in &cells {
        for (tier, expected) in [
            (Tier::Vanilla, cell.passes(Tier::Vanilla)),
            (Tier::Planned, cell.planned_at_least()),
        ] {
            let resp = client
                .request(&verdict_request(
                    &cell.os,
                    &cell.app,
                    Some("health"),
                    Some(tier.label()),
                ))
                .unwrap();
            assert!(resp.ok, "{:?}", resp.error);
            let verdict = resp.verdict.expect("verdict present");
            assert!(verdict.known);
            assert_eq!(verdict.pass, expected, "{}/{} {tier}", cell.os, cell.app);
            assert_eq!(verdict.linux_pass, cell.linux_pass);
        }
    }

    // Unknown names are errors (not silent unknown-verdicts).
    for bad in [
        verdict_request("atlantis", "redis", None, None),
        verdict_request("kerla", "doom", None, None),
        verdict_request("kerla", "redis", Some("bogus"), None),
        verdict_request("kerla", "redis", None, Some("bogus")),
    ] {
        let resp = client.request(&bad).unwrap();
        assert!(!resp.ok, "{bad:?} must fail");
        assert!(resp.error.is_some());
    }

    // Summary equals the OS_MATRIX aggregation recomputed locally.
    let sizes = loupe_sweep::matrix::os_sizes(&os::db());
    let stats = loupe_sweep::matrix::aggregate(&cells, &sizes);
    let resp = client
        .request(&Request {
            cmd: "summary".to_owned(),
            ..Request::default()
        })
        .unwrap();
    assert!(resp.ok);
    assert_eq!(resp.summary.len(), stats.len());
    for (row, expected) in resp.summary.iter().zip(&stats) {
        assert_eq!(row.os, expected.os);
        assert_eq!(row.apps as usize, expected.apps);
        assert_eq!(row.vanilla_pass as usize, expected.vanilla_pass);
        assert_eq!(row.planned_pass as usize, expected.planned_pass);
        assert_eq!(row.syscalls as usize, expected.syscalls);
    }

    // Missing-syscall ranking equals the aggregation's.
    let kerla = stats.iter().find(|r| r.os == "kerla").unwrap();
    let resp = client
        .request(&Request {
            cmd: "missing".to_owned(),
            os: Some("kerla".to_owned()),
            limit: Some(5),
            ..Request::default()
        })
        .unwrap();
    assert!(resp.ok);
    assert_eq!(resp.missing.len(), kerla.top_missing.len().min(5));
    for (got, (sysno, count)) in resp.missing.iter().zip(&kerla.top_missing) {
        assert_eq!(got.syscall, sysno.name());
        assert_eq!(got.blocked_apps as usize, *count);
    }

    // Plan query: the lazily built table serves the curated profile.
    let resp = client
        .request(&Request {
            cmd: "plan".to_owned(),
            os: Some("kerla".to_owned()),
            ..Request::default()
        })
        .unwrap();
    assert!(resp.ok, "{:?}", resp.error);
    let plan = resp.plan.expect("plan present");
    assert_eq!(plan.os, "kerla");
    assert_eq!(
        plan.initially_supported.len() + plan.steps.len(),
        4,
        "every measured app is either initially supported or unlocked"
    );

    // Inverted index: every app requires read(2) somewhere.
    let resp = client
        .request(&Request {
            cmd: "apps".to_owned(),
            syscall: Some("read".to_owned()),
            ..Request::default()
        })
        .unwrap();
    assert!(resp.ok);
    assert!(!resp.apps.is_empty(), "read(2) is required by the fixture");
    let resp = client
        .request(&Request {
            cmd: "apps".to_owned(),
            syscall: Some("not_a_syscall".to_owned()),
            ..Request::default()
        })
        .unwrap();
    assert!(!resp.ok);

    // Stats reflect the traffic this test generated.
    let resp = client
        .request(&Request {
            cmd: "stats".to_owned(),
            ..Request::default()
        })
        .unwrap();
    let stats = resp.stats.expect("stats present");
    assert_eq!(stats.cells, 8);
    assert_eq!(stats.oses, 2);
    assert_eq!(stats.apps, 4);
    assert!(stats.requests > 16);

    // Malformed and unknown requests answer errors, not hangups.
    let raw = client.request_raw("{not json").unwrap();
    assert!(raw.contains("malformed"));
    let resp = client
        .request(&Request {
            cmd: "explode".to_owned(),
            ..Request::default()
        })
        .unwrap();
    assert!(!resp.ok);

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// Synthetic corpus for protocol-equivalence tests: deterministic
/// verdict patterns, no measurement needed.
fn seed_synthetic(dir: &Path, oses: &[&str], apps: &[&str], planned_pass: bool) {
    let db = Database::open(dir).unwrap();
    for (i, os_name) in oses.iter().enumerate() {
        for (j, app) in apps.iter().enumerate() {
            for workload in [Workload::HealthCheck, Workload::Benchmark] {
                let vanilla = (i + j) % 2 == 0;
                let cell = MatrixCell {
                    os: (*os_name).to_owned(),
                    app: (*app).to_owned(),
                    workload,
                    linux_pass: true,
                    missing_required: if vanilla {
                        SysnoSet::new()
                    } else {
                        [loupe_syscalls::Sysno::io_uring_setup]
                            .into_iter()
                            .collect()
                    },
                    vanilla: Some(TierOutcome {
                        pass: vanilla,
                        ..TierOutcome::default()
                    }),
                    planned: Some(TierOutcome {
                        pass: vanilla || planned_pass,
                        ..TierOutcome::default()
                    }),
                    missing_required_flags: Vec::new(),
                };
                db.save_matrix_cell_replacing(&cell).unwrap();
            }
        }
    }
    db.flush().unwrap();
}

const EQ_OSES: [&str; 2] = ["kerla", "gvisor"];
const EQ_APPS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Two daemons over the same corpus, one batching and one not; both
/// kept alive for every proptest case.
fn equivalence_servers() -> (SocketAddr, SocketAddr) {
    static SERVERS: OnceLock<(SocketAddr, SocketAddr)> = OnceLock::new();
    *SERVERS.get_or_init(|| {
        let dir = tmpdir("equiv");
        seed_synthetic(&dir, &EQ_OSES, &EQ_APPS, true);
        let batched = start(
            &dir,
            ServeConfig {
                batch_window: Duration::from_micros(200),
                watch_interval: Duration::ZERO,
                ..ServeConfig::default()
            },
        );
        let direct = start(
            &dir,
            ServeConfig {
                batch_window: Duration::ZERO,
                watch_interval: Duration::ZERO,
                ..ServeConfig::default()
            },
        );
        let addrs = (batched.local_addr(), direct.local_addr());
        // Leak the servers: proptest cases keep hitting them until the
        // process exits.
        std::mem::forget(batched);
        std::mem::forget(direct);
        addrs
    })
}

mod equivalence {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn batched_answers_are_byte_identical_to_unbatched(
            // Each index encodes (os, app, workload, tier) drawn from
            // pools that include unknown names, so error paths must
            // match byte-for-byte too: 3 x 5 x 5 x 4 combinations.
            queries in proptest::collection::vec(0usize..300, 1..12)
        ) {
            let (batched, direct) = equivalence_servers();
            let mut batched = connect(batched);
            let mut direct = connect(direct);
            for q in queries {
                let (os_i, app_i, wl_i, tier_i) =
                    (q % 3, (q / 3) % 5, (q / 15) % 5, (q / 75) % 4);
                let os = ["kerla", "gvisor", "atlantis"][os_i];
                let app = ["alpha", "beta", "gamma", "delta", "doom"][app_i];
                let workload = [None, Some("health"), Some("bench"), Some("suite"), Some("bogus")][wl_i];
                let tier = [None, Some("vanilla"), Some("planned"), Some("bogus")][tier_i];
                let request = serde_json::to_string(&verdict_request(os, app, workload, tier)).unwrap();
                let a = batched.request_raw(&request).unwrap();
                let b = direct.request_raw(&request).unwrap();
                prop_assert_eq!(a, b, "query {} diverged", request);
            }
        }
    }
}

#[test]
fn concurrent_clients_get_coalesced_but_identical_answers() {
    let dir = tmpdir("coalesce");
    seed_synthetic(&dir, &EQ_OSES, &EQ_APPS, true);
    let server = start(
        &dir,
        ServeConfig {
            batch_window: Duration::from_micros(300),
            watch_interval: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let addr = server.local_addr();

    // 32 threads x 8 lookups through the batcher; answers must match a
    // direct index computation regardless of how drains coalesce.
    let mut handles = Vec::new();
    for t in 0..32 {
        handles.push(std::thread::spawn(move || {
            let mut client = connect(addr);
            for k in 0..8 {
                let os = EQ_OSES[(t + k) % 2];
                let app = EQ_APPS[(t * 3 + k) % 4];
                let resp = client
                    .request(&verdict_request(os, app, Some("health"), Some("vanilla")))
                    .unwrap();
                assert!(resp.ok);
                let verdict = resp.verdict.unwrap();
                // seed_synthetic: vanilla passes iff (os_i + app_i) even.
                let os_i = EQ_OSES.iter().position(|o| *o == os).unwrap();
                let app_i = EQ_APPS.iter().position(|a| *a == app).unwrap();
                assert_eq!(verdict.pass, (os_i + app_i) % 2 == 0);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let mut client = connect(addr);
    let stats = client
        .request(&Request {
            cmd: "stats".to_owned(),
            ..Request::default()
        })
        .unwrap()
        .stats
        .unwrap();
    assert_eq!(stats.batched_lookups, 32 * 8);
    assert!(
        stats.batches <= stats.batched_lookups,
        "drains never exceed lookups"
    );
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn database_edits_swap_whole_generations_never_torn() {
    let dir = tmpdir("swap");
    let oses = ["flipos"];
    let apps = ["a0", "a1", "a2", "a3", "a4", "a5"];
    seed_synthetic(&dir, &oses, &apps, false);
    let server = start(
        &dir,
        ServeConfig {
            watch_interval: Duration::from_millis(20),
            ..ServeConfig::default()
        },
    );
    let mut client = connect(server.local_addr());
    let all_cells: Vec<CellQuery> = apps
        .iter()
        .map(|app| CellQuery {
            os: "flipos".to_owned(),
            app: (*app).to_owned(),
            workload: Some("health".to_owned()),
            tier: Some("planned".to_owned()),
        })
        .collect();
    let ask = |client: &mut Client| -> Vec<bool> {
        let resp = client
            .request(&Request {
                cmd: "verdicts".to_owned(),
                cells: all_cells.clone(),
                ..Request::default()
            })
            .unwrap();
        assert!(resp.ok, "{:?}", resp.error);
        assert_eq!(resp.verdicts.len(), apps.len());
        resp.verdicts.iter().map(|v| v.pass).collect()
    };

    // seed_synthetic(planned_pass): planned passes iff vanilla passes
    // (odd os+app index) or planned_pass is set. Flip planned_pass per
    // round: every odd-index cell's planned verdict toggles together.
    let toggled: Vec<usize> = (0..apps.len()).filter(|i| i % 2 == 1).collect();
    for round in 0..4u32 {
        let state = round % 2 == 0;
        // Complete edit first, manifest flush last: the daemon may
        // notice only once the (atomic) manifest rename lands.
        seed_synthetic(&dir, &oses, &apps, state);
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let answers = ask(&mut client);
            // The atomicity property: within one response, every
            // toggled cell agrees — a torn mix of generations would
            // disagree.
            let agreed: Vec<bool> = toggled.iter().map(|&i| answers[i]).collect();
            assert!(
                agreed.iter().all(|&p| p == agreed[0]),
                "torn generation: {answers:?}"
            );
            if agreed[0] == state {
                break; // the new generation is live
            }
            assert!(
                Instant::now() < deadline,
                "round {round}: daemon never served the new generation"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}
