//! Property tests for the syscall-metadata substrate.

use loupe_syscalls::{Category, PseudoFile, PseudoFileClass, SubFeature, Sysno};
use proptest::prelude::*;

proptest! {
    #[test]
    fn category_is_total_and_stable(raw in 0u32..460) {
        if let Some(s) = Sysno::from_raw(raw) {
            let c1 = Category::of(s);
            let c2 = Category::of(s);
            prop_assert_eq!(c1, c2);
        }
    }

    #[test]
    fn pseudo_canonicalisation_is_idempotent(pid in 1u32..1_000_000, tail in "[a-z]{1,8}") {
        let path = format!("/proc/{pid}/{tail}");
        let once = PseudoFile::canonicalize(&path).unwrap();
        let twice = PseudoFile::canonicalize(once.path()).unwrap();
        prop_assert_eq!(once.path(), twice.path());
        prop_assert_eq!(once.class(), PseudoFileClass::Proc);
        prop_assert!(once.path().starts_with("/proc/self/"));
    }

    #[test]
    fn non_pseudo_paths_never_canonicalise(tail in "[a-z]{1,12}") {
        for prefix in ["/etc", "/home", "/var", "/srv", "/opt"] {
            let path = format!("{prefix}/{tail}");
            prop_assert!(PseudoFile::canonicalize(&path).is_none(), "{}", path);
        }
    }

    #[test]
    fn sub_feature_lookup_is_injective(idx in 0..SubFeature::ALL.len()) {
        let sf = SubFeature::ALL[idx];
        let found = SubFeature::from_parts(sf.sysno(), sf.raw());
        prop_assert_eq!(found, Some(sf));
        // Display form is always "<syscall>:<NAME>".
        let display = sf.to_string();
        prop_assert!(display.starts_with(sf.sysno().name()));
        prop_assert!(display.ends_with(sf.name()));
    }

    #[test]
    fn sub_feature_keys_round_trip_selectors(idx in 0..SubFeature::ALL.len(), noise in 0u64..u64::MAX) {
        let sf = SubFeature::ALL[idx];
        let key = sf.key();
        prop_assert_eq!(key.selector_name(), Some(sf.name()));
        // Unknown selectors never alias a known name.
        let unknown = loupe_syscalls::SubFeatureKey::new(sf.sysno(), noise);
        if unknown.selector_name().is_some() {
            // Then the noise value must be a real selector of this syscall.
            prop_assert!(SubFeature::ALL.iter().any(|s| s.sysno() == sf.sysno() && s.raw() == noise));
        }
    }

    #[test]
    fn allocating_categories_match_fd_and_memory_calls(raw in 0u32..460) {
        if let Some(s) = Sysno::from_raw(raw) {
            // Spot invariant: the syscalls the paper says can "almost
            // never" be avoided because they allocate resources are in
            // allocating categories.
            if matches!(s, Sysno::mmap | Sysno::openat | Sysno::socket | Sysno::pipe2 | Sysno::epoll_create1) {
                prop_assert!(Category::of(s).allocates_resources());
            }
        }
    }
}
