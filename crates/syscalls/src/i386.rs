//! A minimal i386 (32-bit) syscall name table.
//!
//! Table 3 of the paper compares Nginx 0.3.19 built against glibc 2.3.2 in
//! 32-bit mode with a modern 64-bit build. Reproducing that comparison
//! requires naming the 32-bit variants (`mmap2`, `fstat64`, `_llseek`,
//! `socketcall`-era `recv`, ...). We only carry names the experiment needs —
//! the 32-bit ABI is otherwise out of scope.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 32-bit x86 system call, identified by name.
///
/// Unlike [`crate::Sysno`], this type does not carry numbers: the Table 3
/// experiment compares *name sets*, and several 32-bit entries (`old_mmap`,
/// `recv`) are multiplexer-era pseudo-entries without stable numbers of
/// their own.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Sysno32(String);

impl Sysno32 {
    /// Creates a 32-bit syscall name if it is in the known table.
    ///
    /// # Examples
    ///
    /// ```
    /// use loupe_syscalls::i386::Sysno32;
    /// assert!(Sysno32::from_name("mmap2").is_some());
    /// assert!(Sysno32::from_name("not_a_syscall").is_none());
    /// ```
    pub fn from_name(name: &str) -> Option<Sysno32> {
        if NAMES.contains(&name) {
            Some(Sysno32(name.to_owned()))
        } else {
            None
        }
    }

    /// The syscall name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Whether this 32-bit syscall exists purely because of the 32-bit
    /// architecture (it was replaced or renamed on x86-64). Table 3 prints
    /// these in italics.
    pub fn is_arch_variant(&self) -> bool {
        ARCH_VARIANTS.contains(&self.0.as_str())
    }
}

impl fmt::Display for Sysno32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// 32-bit-only or 32-bit-renamed syscalls (italicised in Table 3).
pub const ARCH_VARIANTS: &[&str] = &[
    "_llseek",
    "fcntl64",
    "fstat64",
    "stat64",
    "mmap2",
    "old_mmap",
    "geteuid32",
    "setuid32",
    "setgid32",
    "setgroups32",
    "set_thread_area",
    "recv",
    "pread",
    "pwrite",
];

/// All 32-bit syscall names the Table 3 experiment may emit.
pub const NAMES: &[&str] = &[
    "_llseek",
    "accept",
    "access",
    "bind",
    "brk",
    "clone",
    "close",
    "connect",
    "dup2",
    "epoll_create",
    "epoll_ctl",
    "epoll_wait",
    "execve",
    "exit_group",
    "fcntl64",
    "fstat64",
    "geteuid32",
    "getpid",
    "getrlimit",
    "gettimeofday",
    "ioctl",
    "listen",
    "mkdir",
    "mmap2",
    "munmap",
    "old_mmap",
    "open",
    "prctl",
    "pread",
    "pwrite",
    "read",
    "recv",
    "rt_sigaction",
    "rt_sigprocmask",
    "rt_sigsuspend",
    "set_thread_area",
    "setgid32",
    "setgroups32",
    "setsid",
    "setsockopt",
    "setuid32",
    "socket",
    "socketpair",
    "stat64",
    "umask",
    "uname",
    "write",
    "writev",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_variants_are_in_the_table() {
        for v in ARCH_VARIANTS {
            assert!(NAMES.contains(v), "{v} missing from NAMES");
        }
    }

    #[test]
    fn lookup() {
        let s = Sysno32::from_name("fstat64").unwrap();
        assert!(s.is_arch_variant());
        let s = Sysno32::from_name("read").unwrap();
        assert!(!s.is_arch_variant());
    }

    #[test]
    fn names_sorted_unique() {
        let mut sorted = NAMES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), NAMES.len());
    }
}
