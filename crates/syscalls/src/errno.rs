//! Linux errno values as returned on the syscall ABI (negative return).
//!
//! Stubbing a feature means returning `-ENOSYS` ("not implemented", §2 of
//! the paper); the simulated kernel and the ptrace backend both speak this
//! convention.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! errnos {
    ($(($num:expr, $name:ident, $msg:expr)),* $(,)?) => {
        /// A Linux error number.
        ///
        /// # Examples
        ///
        /// ```
        /// use loupe_syscalls::Errno;
        /// assert_eq!(Errno::ENOSYS.raw(), 38);
        /// assert_eq!(Errno::ENOSYS.to_ret(), -38);
        /// ```
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        #[allow(clippy::upper_case_acronyms)]
        pub enum Errno {
            $(
                #[doc = $msg]
                $name = $num,
            )*
        }

        impl Errno {
            /// All defined errno values.
            pub const ALL: &'static [Errno] = &[$(Errno::$name,)*];

            /// The positive errno number.
            pub fn raw(self) -> i64 {
                self as i64
            }

            /// The value as returned on the syscall ABI (negated).
            pub fn to_ret(self) -> i64 {
                -(self as i64)
            }

            /// Recovers an `Errno` from a *negative* syscall return value.
            ///
            /// # Examples
            ///
            /// ```
            /// use loupe_syscalls::Errno;
            /// assert_eq!(Errno::from_ret(-38), Some(Errno::ENOSYS));
            /// assert_eq!(Errno::from_ret(0), None);
            /// ```
            pub fn from_ret(ret: i64) -> Option<Errno> {
                if ret >= 0 {
                    return None;
                }
                let n = -ret;
                match n {
                    $($num => Some(Errno::$name),)*
                    _ => None,
                }
            }

            /// Human-readable message, in the style of `strerror(3)`.
            pub fn message(self) -> &'static str {
                match self {
                    $(Errno::$name => $msg,)*
                }
            }

            /// The symbolic name, e.g. `"ENOSYS"`.
            pub fn symbol(self) -> &'static str {
                match self {
                    $(Errno::$name => stringify!($name),)*
                }
            }
        }
    };
}

errnos![
    (1, EPERM, "operation not permitted"),
    (2, ENOENT, "no such file or directory"),
    (3, ESRCH, "no such process"),
    (4, EINTR, "interrupted system call"),
    (5, EIO, "input/output error"),
    (6, ENXIO, "no such device or address"),
    (7, E2BIG, "argument list too long"),
    (8, ENOEXEC, "exec format error"),
    (9, EBADF, "bad file descriptor"),
    (10, ECHILD, "no child processes"),
    (11, EAGAIN, "resource temporarily unavailable"),
    (12, ENOMEM, "cannot allocate memory"),
    (13, EACCES, "permission denied"),
    (14, EFAULT, "bad address"),
    (16, EBUSY, "device or resource busy"),
    (17, EEXIST, "file exists"),
    (19, ENODEV, "no such device"),
    (20, ENOTDIR, "not a directory"),
    (21, EISDIR, "is a directory"),
    (22, EINVAL, "invalid argument"),
    (23, ENFILE, "too many open files in system"),
    (24, EMFILE, "too many open files"),
    (25, ENOTTY, "inappropriate ioctl for device"),
    (28, ENOSPC, "no space left on device"),
    (29, ESPIPE, "illegal seek"),
    (30, EROFS, "read-only file system"),
    (32, EPIPE, "broken pipe"),
    (34, ERANGE, "numerical result out of range"),
    (38, ENOSYS, "function not implemented"),
    (39, ENOTEMPTY, "directory not empty"),
    (88, ENOTSOCK, "socket operation on non-socket"),
    (92, ENOPROTOOPT, "protocol not available"),
    (95, EOPNOTSUPP, "operation not supported"),
    (98, EADDRINUSE, "address already in use"),
    (107, ENOTCONN, "transport endpoint is not connected"),
    (110, ETIMEDOUT, "connection timed out"),
    (111, ECONNREFUSED, "connection refused"),
];

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.symbol(), self.message())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enosys_is_38() {
        assert_eq!(Errno::ENOSYS.raw(), 38);
        assert_eq!(Errno::ENOSYS.to_ret(), -38);
    }

    #[test]
    fn from_ret_roundtrip() {
        for &e in Errno::ALL {
            assert_eq!(Errno::from_ret(e.to_ret()), Some(e));
        }
    }

    #[test]
    fn from_ret_rejects_success_values() {
        assert_eq!(Errno::from_ret(0), None);
        assert_eq!(Errno::from_ret(42), None);
    }

    #[test]
    fn display_has_symbol_and_message() {
        let s = Errno::EBADF.to_string();
        assert!(s.contains("EBADF"));
        assert!(s.contains("bad file descriptor"));
    }
}
