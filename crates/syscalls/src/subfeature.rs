//! Sub-features of vectored system calls (§5.4 of the paper).
//!
//! Vectored system calls (`ioctl`, `fcntl`, `prctl`, ...) bundle many
//! operations behind one number; treating them as monolithic makes
//! compatibility look harder than it is. Loupe can interpose at the
//! granularity of the *operation argument*; this module names those
//! operations.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::nr::Sysno;

/// Identifies one operation of a vectored system call: the syscall plus the
/// value of its selector argument.
///
/// # Examples
///
/// ```
/// use loupe_syscalls::{SubFeature, SubFeatureKey, Sysno};
///
/// let key = SubFeatureKey::new(Sysno::fcntl, SubFeature::F_SETFL.raw());
/// assert_eq!(key.sysno(), Sysno::fcntl);
/// assert_eq!(key.to_string(), "fcntl:F_SETFL");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubFeatureKey {
    sysno: Sysno,
    selector: u64,
}

impl SubFeatureKey {
    /// Creates a key from a syscall and the raw selector argument value.
    pub fn new(sysno: Sysno, selector: u64) -> SubFeatureKey {
        SubFeatureKey { sysno, selector }
    }

    /// The vectored system call.
    pub fn sysno(self) -> Sysno {
        self.sysno
    }

    /// The raw selector value.
    pub fn selector(self) -> u64 {
        self.selector
    }

    /// Symbolic name of the selector if known (e.g. `"F_SETFL"`).
    pub fn selector_name(self) -> Option<&'static str> {
        SubFeature::from_parts(self.sysno, self.selector).map(SubFeature::name)
    }

    /// Whether this operation is typically critical (see
    /// [`SubFeature::is_typically_critical`]). Selectors not in the
    /// modeled table are conservatively non-critical: a kernel that
    /// recognises the syscall but not the flag answers `-EINVAL`, not
    /// `-ENOSYS`.
    pub fn is_typically_critical(self) -> bool {
        SubFeature::from_parts(self.sysno, self.selector)
            .is_some_and(SubFeature::is_typically_critical)
    }

    /// Parses the [`Display`](fmt::Display) form back into a key:
    /// `"fcntl:F_SETFL"` (symbolic) or `"ioctl:0x5423"` (raw hex for
    /// selectors outside the modeled table). Returns `None` for unknown
    /// syscall names, unknown symbolic selectors, or malformed hex.
    pub fn parse(s: &str) -> Option<SubFeatureKey> {
        let (sys_name, sel) = s.split_once(':')?;
        let sysno = Sysno::from_name(sys_name)?;
        if let Some(hex) = sel.strip_prefix("0x") {
            let selector = u64::from_str_radix(hex, 16).ok()?;
            return Some(SubFeatureKey::new(sysno, selector));
        }
        SubFeature::ALL
            .iter()
            .find(|f| f.sysno() == sysno && f.name() == sel)
            .map(|f| f.key())
    }
}

impl fmt::Display for SubFeatureKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.selector_name() {
            Some(name) => write!(f, "{}:{}", self.sysno.name(), name),
            None => write!(f, "{}:{:#x}", self.sysno.name(), self.selector),
        }
    }
}

macro_rules! subfeatures {
    ($(($variant:ident, $sysno:ident, $sel:expr, $name:expr, $critical:expr)),* $(,)?) => {
        /// A known operation of a vectored system call.
        ///
        /// The `critical` flag captures the paper's observation that some
        /// sub-features are load-bearing (e.g. `fcntl(F_SETFL)` sets
        /// non-blocking mode — required by every event-driven server) while
        /// others can always be stubbed (e.g. `fcntl(F_SETFD)` sets
        /// close-on-exec — a non-critical hardening measure).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        #[allow(non_camel_case_types)]
        pub enum SubFeature {
            $(
                #[doc = $name]
                $variant,
            )*
        }

        impl SubFeature {
            /// All known sub-features.
            pub const ALL: &'static [SubFeature] = &[$(SubFeature::$variant,)*];

            /// The vectored syscall this operation belongs to.
            pub fn sysno(self) -> Sysno {
                match self {
                    $(SubFeature::$variant => Sysno::$sysno,)*
                }
            }

            /// The raw selector value.
            pub fn raw(self) -> u64 {
                match self {
                    $(SubFeature::$variant => $sel,)*
                }
            }

            /// Symbolic name, e.g. `"TCGETS"`.
            pub fn name(self) -> &'static str {
                match self {
                    $(SubFeature::$variant => $name,)*
                }
            }

            /// Whether the paper's dataset found this operation to be
            /// critical for core application functionality (cannot be
            /// stubbed in most applications).
            pub fn is_typically_critical(self) -> bool {
                match self {
                    $(SubFeature::$variant => $critical,)*
                }
            }

            /// All modeled operations of one vectored syscall — the seed
            /// set for pessimistic "Partially implemented" kernel
            /// profiles (a table ingester that only knows *the syscall*
            /// is partial assumes every modeled flag is a hole until an
            /// override says otherwise).
            pub fn for_sysno(sysno: Sysno) -> Vec<SubFeature> {
                SubFeature::ALL
                    .iter()
                    .copied()
                    .filter(|f| f.sysno() == sysno)
                    .collect()
            }

            /// Looks up a known sub-feature from syscall + selector.
            pub fn from_parts(sysno: Sysno, selector: u64) -> Option<SubFeature> {
                $(
                    if sysno == Sysno::$sysno && selector == $sel {
                        return Some(SubFeature::$variant);
                    }
                )*
                None
            }

            /// Key form of this sub-feature.
            pub fn key(self) -> SubFeatureKey {
                SubFeatureKey::new(self.sysno(), self.raw())
            }
        }
    };
}

subfeatures![
    // fcntl(2) commands (§5.4: F_SETFL required, F_SETFD always stubbable).
    (F_DUPFD, fcntl, 0, "F_DUPFD", false),
    (F_GETFD, fcntl, 1, "F_GETFD", false),
    (F_SETFD, fcntl, 2, "F_SETFD", false),
    (F_GETFL, fcntl, 3, "F_GETFL", false),
    (F_SETFL, fcntl, 4, "F_SETFL", true),
    (F_SETLK, fcntl, 6, "F_SETLK", false),
    (F_SETLKW, fcntl, 7, "F_SETLKW", false),
    (F_GETLK, fcntl, 5, "F_GETLK", false),
    (F_DUPFD_CLOEXEC, fcntl, 1030, "F_DUPFD_CLOEXEC", false),
    // ioctl(2) requests observed in the paper's dataset (§5.4: all stubbable).
    (TCGETS, ioctl, 0x5401, "TCGETS", false),
    (TCSETS, ioctl, 0x5402, "TCSETS", false),
    (TIOCGWINSZ, ioctl, 0x5413, "TIOCGWINSZ", false),
    (FIONBIO, ioctl, 0x5421, "FIONBIO", false),
    (FIOASYNC, ioctl, 0x5452, "FIOASYNC", false),
    (FIONREAD, ioctl, 0x541b, "FIONREAD", false),
    (FIOCLEX, ioctl, 0x5451, "FIOCLEX", false),
    // prctl(2) options (Fig. 6b: PR_SET_KEEPCAPS can be faked).
    (PR_SET_NAME, prctl, 15, "PR_SET_NAME", false),
    (PR_GET_NAME, prctl, 16, "PR_GET_NAME", false),
    (PR_SET_KEEPCAPS, prctl, 8, "PR_SET_KEEPCAPS", false),
    (PR_SET_DUMPABLE, prctl, 4, "PR_SET_DUMPABLE", false),
    (PR_SET_SECCOMP, prctl, 22, "PR_SET_SECCOMP", false),
    (PR_SET_NO_NEW_PRIVS, prctl, 38, "PR_SET_NO_NEW_PRIVS", false),
    (PR_CAPBSET_READ, prctl, 23, "PR_CAPBSET_READ", false),
    // arch_prctl(2): §5.4 finds only ARCH_SET_FS (TLS setup) required.
    (ARCH_SET_GS, arch_prctl, 0x1001, "ARCH_SET_GS", false),
    (ARCH_SET_FS, arch_prctl, 0x1002, "ARCH_SET_FS", true),
    (ARCH_GET_FS, arch_prctl, 0x1003, "ARCH_GET_FS", false),
    (ARCH_GET_GS, arch_prctl, 0x1004, "ARCH_GET_GS", false),
    (
        ARCH_CET_STATUS,
        arch_prctl,
        0x3001,
        "ARCH_CET_STATUS",
        false
    ),
    // madvise(2) advice values (§5.3: optimizing hints, stubbable).
    (MADV_NORMAL, madvise, 0, "MADV_NORMAL", false),
    (MADV_RANDOM, madvise, 1, "MADV_RANDOM", false),
    (MADV_SEQUENTIAL, madvise, 2, "MADV_SEQUENTIAL", false),
    (MADV_WILLNEED, madvise, 3, "MADV_WILLNEED", false),
    (MADV_DONTNEED, madvise, 4, "MADV_DONTNEED", false),
    (MADV_FREE, madvise, 8, "MADV_FREE", false),
    (MADV_HUGEPAGE, madvise, 14, "MADV_HUGEPAGE", false),
    (MADV_DONTDUMP, madvise, 16, "MADV_DONTDUMP", false),
    // prlimit64(2) resources (§5.4: only CORE/NOFILE/STACK used).
    (RLIMIT_CPU, prlimit64, 0, "RLIMIT_CPU", false),
    (RLIMIT_FSIZE, prlimit64, 1, "RLIMIT_FSIZE", false),
    (RLIMIT_DATA, prlimit64, 2, "RLIMIT_DATA", false),
    (RLIMIT_STACK, prlimit64, 3, "RLIMIT_STACK", false),
    (RLIMIT_CORE, prlimit64, 4, "RLIMIT_CORE", false),
    (RLIMIT_RSS, prlimit64, 5, "RLIMIT_RSS", false),
    (RLIMIT_NPROC, prlimit64, 6, "RLIMIT_NPROC", false),
    (RLIMIT_NOFILE, prlimit64, 7, "RLIMIT_NOFILE", false),
    (RLIMIT_MEMLOCK, prlimit64, 8, "RLIMIT_MEMLOCK", false),
    (RLIMIT_AS, prlimit64, 9, "RLIMIT_AS", false),
    // futex(2) ops: WAIT/WAKE are the critical pair.
    (FUTEX_WAIT, futex, 0, "FUTEX_WAIT", true),
    (FUTEX_WAKE, futex, 1, "FUTEX_WAKE", true),
    (FUTEX_REQUEUE, futex, 3, "FUTEX_REQUEUE", false),
    (FUTEX_WAIT_BITSET, futex, 9, "FUTEX_WAIT_BITSET", true),
    (FUTEX_WAKE_BITSET, futex, 10, "FUTEX_WAKE_BITSET", true),
    // mmap(2) purposes: Loupe distinguishes anonymous-memory allocation from
    // file mapping via the flags argument (MAP_ANONYMOUS = 0x20).
    (MAP_FILE_BACKED, mmap, 0, "MAP_FILE_BACKED", true),
    (MAP_ANONYMOUS, mmap, 0x20, "MAP_ANONYMOUS", true),
];

impl fmt::Display for SubFeature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.sysno().name(), self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_roundtrip() {
        for &sf in SubFeature::ALL {
            assert_eq!(SubFeature::from_parts(sf.sysno(), sf.raw()), Some(sf));
        }
    }

    #[test]
    fn unknown_selector_yields_none() {
        assert_eq!(SubFeature::from_parts(Sysno::ioctl, 0xdead_beef), None);
        // Selector values are scoped per syscall: F_SETFL's value under
        // a non-vectored syscall is not a sub-feature.
        assert_eq!(SubFeature::from_parts(Sysno::read, 4), None);
    }

    #[test]
    fn critical_sub_features_match_the_paper() {
        assert!(SubFeature::F_SETFL.is_typically_critical());
        assert!(!SubFeature::F_SETFD.is_typically_critical());
        assert!(SubFeature::ARCH_SET_FS.is_typically_critical());
        assert!(!SubFeature::PR_SET_KEEPCAPS.is_typically_critical());
        assert!(!SubFeature::TCGETS.is_typically_critical());
    }

    #[test]
    fn display_forms() {
        assert_eq!(SubFeature::TCGETS.to_string(), "ioctl:TCGETS");
        let key = SubFeatureKey::new(Sysno::ioctl, 0x1234);
        assert_eq!(key.to_string(), "ioctl:0x1234");
    }

    #[test]
    fn key_accessors() {
        let k = SubFeature::RLIMIT_NOFILE.key();
        assert_eq!(k.sysno(), Sysno::prlimit64);
        assert_eq!(k.selector(), 7);
        assert_eq!(k.selector_name(), Some("RLIMIT_NOFILE"));
    }

    #[test]
    fn parse_roundtrips_display() {
        for &sf in SubFeature::ALL {
            let key = sf.key();
            assert_eq!(SubFeatureKey::parse(&key.to_string()), Some(key));
        }
        // Raw keys outside the modeled table round-trip through hex.
        let raw = SubFeatureKey::new(Sysno::ioctl, 0x5423);
        assert_eq!(SubFeatureKey::parse(&raw.to_string()), Some(raw));
        assert_eq!(SubFeatureKey::parse("ioctl:0x5423"), Some(raw));
        // Unknown syscall, unknown symbolic selector, malformed hex.
        assert_eq!(SubFeatureKey::parse("notasyscall:F_SETFL"), None);
        assert_eq!(SubFeatureKey::parse("fcntl:F_BOGUS"), None);
        assert_eq!(SubFeatureKey::parse("ioctl:0xzz"), None);
        assert_eq!(SubFeatureKey::parse("no-colon"), None);
    }

    #[test]
    fn raw_key_criticality_defaults_false() {
        assert!(SubFeature::FUTEX_WAIT.key().is_typically_critical());
        assert!(!SubFeature::F_SETFD.key().is_typically_critical());
        assert!(!SubFeatureKey::new(Sysno::ioctl, 0xdead).is_typically_critical());
    }

    #[test]
    fn for_sysno_partitions_the_table() {
        let fcntl = SubFeature::for_sysno(Sysno::fcntl);
        assert!(fcntl.contains(&SubFeature::F_SETFL));
        assert!(fcntl.iter().all(|f| f.sysno() == Sysno::fcntl));
        let total: usize = [
            Sysno::fcntl,
            Sysno::ioctl,
            Sysno::prctl,
            Sysno::arch_prctl,
            Sysno::madvise,
            Sysno::prlimit64,
            Sysno::futex,
            Sysno::mmap,
        ]
        .iter()
        .map(|&s| SubFeature::for_sysno(s).len())
        .sum();
        assert_eq!(total, SubFeature::ALL.len());
        assert!(SubFeature::for_sysno(Sysno::read).is_empty());
    }
}
