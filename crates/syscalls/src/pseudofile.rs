//! The pseudo-file registry (§3.3: "Pseudo Files").
//!
//! Part of the Linux API is exposed through special files under `/proc`,
//! `/dev` and `/sys`. Loupe detects accesses to them by pattern-matching the
//! path arguments of the `open` family and can disable, stub or fake those
//! accesses like system calls.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The filesystem namespace a pseudo-file lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PseudoFileClass {
    /// `/proc/...`
    Proc,
    /// `/dev/...`
    Dev,
    /// `/sys/...`
    Sys,
}

impl PseudoFileClass {
    /// Path prefix of the class.
    pub fn prefix(self) -> &'static str {
        match self {
            PseudoFileClass::Proc => "/proc",
            PseudoFileClass::Dev => "/dev",
            PseudoFileClass::Sys => "/sys",
        }
    }

    /// Classifies a path, if it points into a pseudo filesystem.
    ///
    /// # Examples
    ///
    /// ```
    /// use loupe_syscalls::PseudoFileClass;
    /// assert_eq!(PseudoFileClass::of_path("/dev/urandom"), Some(PseudoFileClass::Dev));
    /// assert_eq!(PseudoFileClass::of_path("/etc/passwd"), None);
    /// ```
    pub fn of_path(path: &str) -> Option<PseudoFileClass> {
        for class in [
            PseudoFileClass::Proc,
            PseudoFileClass::Dev,
            PseudoFileClass::Sys,
        ] {
            let p = class.prefix();
            if path == p || (path.starts_with(p) && path.as_bytes().get(p.len()) == Some(&b'/')) {
                return Some(class);
            }
        }
        None
    }
}

impl fmt::Display for PseudoFileClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prefix())
    }
}

/// A pseudo-file access observed (or interposable) by Loupe.
///
/// Paths are kept in a canonical form where PID components are replaced by
/// the placeholder `self` (`/proc/1234/status` → `/proc/self/status`) so
/// that accesses aggregate across runs.
///
/// # Examples
///
/// ```
/// use loupe_syscalls::{PseudoFile, PseudoFileClass};
///
/// let pf = PseudoFile::canonicalize("/proc/4242/status").unwrap();
/// assert_eq!(pf.path(), "/proc/self/status");
/// assert_eq!(pf.class(), PseudoFileClass::Proc);
/// assert!(PseudoFile::canonicalize("/tmp/x").is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PseudoFile {
    class: PseudoFileClass,
    path: String,
}

impl PseudoFile {
    /// Canonicalizes a path into a pseudo-file, or `None` if the path is a
    /// regular file.
    pub fn canonicalize(path: &str) -> Option<PseudoFile> {
        let class = PseudoFileClass::of_path(path)?;
        let canon = if class == PseudoFileClass::Proc {
            canonicalize_proc_pid(path)
        } else {
            path.to_owned()
        };
        Some(PseudoFile { class, path: canon })
    }

    /// The canonical path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The namespace class.
    pub fn class(&self) -> PseudoFileClass {
        self.class
    }
}

impl fmt::Display for PseudoFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.path)
    }
}

fn canonicalize_proc_pid(path: &str) -> String {
    let mut out = Vec::new();
    for (i, comp) in path.split('/').enumerate() {
        // Replace the PID component directly under /proc (index 2 after the
        // leading empty component and "proc").
        if i == 2 && !comp.is_empty() && comp.bytes().all(|b| b.is_ascii_digit()) {
            out.push("self");
        } else {
            out.push(comp);
        }
    }
    out.join("/")
}

/// Pseudo-files commonly accessed by the paper's application set.
pub const WELL_KNOWN: &[&str] = &[
    "/proc/self/status",
    "/proc/self/exe",
    "/proc/self/maps",
    "/proc/self/stat",
    "/proc/self/fd",
    "/proc/cpuinfo",
    "/proc/meminfo",
    "/proc/stat",
    "/proc/sys/kernel/osrelease",
    "/proc/sys/net/core/somaxconn",
    "/proc/sys/vm/overcommit_memory",
    "/proc/sys/vm/max_map_count",
    "/dev/null",
    "/dev/zero",
    "/dev/random",
    "/dev/urandom",
    "/dev/tty",
    "/dev/shm",
    "/sys/devices/system/cpu/online",
    "/sys/kernel/mm/transparent_hugepage/enabled",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_prefixes() {
        assert_eq!(
            PseudoFileClass::of_path("/proc/self/status"),
            Some(PseudoFileClass::Proc)
        );
        assert_eq!(
            PseudoFileClass::of_path("/sys/kernel"),
            Some(PseudoFileClass::Sys)
        );
        assert_eq!(
            PseudoFileClass::of_path("/devel/x"),
            None,
            "prefix must end at component"
        );
        assert_eq!(
            PseudoFileClass::of_path("/proc"),
            Some(PseudoFileClass::Proc)
        );
        assert_eq!(PseudoFileClass::of_path("relative/proc"), None);
    }

    #[test]
    fn canonicalizes_pids() {
        assert_eq!(
            PseudoFile::canonicalize("/proc/31337/exe").unwrap().path(),
            "/proc/self/exe"
        );
        assert_eq!(
            PseudoFile::canonicalize("/proc/self/exe").unwrap().path(),
            "/proc/self/exe"
        );
        // Non-PID components are untouched.
        assert_eq!(
            PseudoFile::canonicalize("/proc/cpuinfo").unwrap().path(),
            "/proc/cpuinfo"
        );
        // PID-looking components deeper in the path are untouched.
        assert_eq!(
            PseudoFile::canonicalize("/proc/self/task/1234/stat")
                .unwrap()
                .path(),
            "/proc/self/task/1234/stat"
        );
    }

    #[test]
    fn well_known_all_canonicalize() {
        for p in WELL_KNOWN {
            let pf = PseudoFile::canonicalize(p).expect("well-known paths are pseudo-files");
            assert_eq!(pf.path(), *p, "well-known paths are already canonical");
        }
    }

    #[test]
    fn regular_files_are_not_pseudo() {
        for p in [
            "/etc/nginx/nginx.conf",
            "/var/log/nginx/access.log",
            "index.html",
        ] {
            assert!(PseudoFile::canonicalize(p).is_none(), "{p}");
        }
    }
}
