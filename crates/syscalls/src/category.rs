//! Coarse functional categories for system calls.
//!
//! Categories drive two analyses in the paper: the low-range/high-range
//! stubbing discussion (§5.2, "higher-range syscalls are better stubbing
//! candidates") and the resource-allocation discussion (§5.3, "syscalls that
//! allocate resources cannot be stubbed or faked").

use serde::{Deserialize, Serialize};

use crate::nr::Sysno;

/// Functional category of a system call.
///
/// # Examples
///
/// ```
/// use loupe_syscalls::{Category, Sysno};
/// assert_eq!(Category::of(Sysno::mmap), Category::Memory);
/// assert_eq!(Category::of(Sysno::accept4), Category::Network);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// File and directory I/O (open/read/write/stat...).
    FileIo,
    /// Virtual memory management (mmap/brk/mprotect...).
    Memory,
    /// Sockets and networking.
    Network,
    /// Process and thread lifecycle (fork/clone/execve/exit...).
    Process,
    /// Signal delivery and masks.
    Signal,
    /// Synchronisation (futex, robust lists).
    Sync,
    /// Scalable event I/O (epoll/poll/select, eventfd, timerfd).
    EventIo,
    /// Clocks, timers and sleeping.
    Time,
    /// Credentials: uids, gids, capabilities, session ids.
    Identity,
    /// Resource limits, accounting, priorities and scheduling policy.
    Resource,
    /// Inter-process communication other than sockets (pipes, SysV IPC, mq).
    Ipc,
    /// Kernel/system-wide queries and tuning (uname, sysinfo, sysctl...).
    System,
    /// Security features (seccomp, landlock, keys, xattr...).
    Security,
    /// Everything else.
    Misc,
}

impl Category {
    /// All categories, for iteration in reports.
    pub const ALL: &'static [Category] = &[
        Category::FileIo,
        Category::Memory,
        Category::Network,
        Category::Process,
        Category::Signal,
        Category::Sync,
        Category::EventIo,
        Category::Time,
        Category::Identity,
        Category::Resource,
        Category::Ipc,
        Category::System,
        Category::Security,
        Category::Misc,
    ];

    /// Short human-readable label, as used in reports and the generated
    /// compatibility matrix.
    pub fn label(self) -> &'static str {
        match self {
            Category::FileIo => "file-io",
            Category::Memory => "memory",
            Category::Network => "network",
            Category::Process => "process",
            Category::Signal => "signal",
            Category::Sync => "sync",
            Category::EventIo => "event-io",
            Category::Time => "time",
            Category::Identity => "identity",
            Category::Resource => "resource",
            Category::Ipc => "ipc",
            Category::System => "system",
            Category::Security => "security",
            Category::Misc => "misc",
        }
    }

    /// Classifies a system call.
    pub fn of(s: Sysno) -> Category {
        use Category::*;
        match s {
            Sysno::read
            | Sysno::write
            | Sysno::open
            | Sysno::close
            | Sysno::stat
            | Sysno::fstat
            | Sysno::lstat
            | Sysno::lseek
            | Sysno::pread64
            | Sysno::pwrite64
            | Sysno::readv
            | Sysno::writev
            | Sysno::access
            | Sysno::sendfile
            | Sysno::fcntl
            | Sysno::flock
            | Sysno::fsync
            | Sysno::fdatasync
            | Sysno::truncate
            | Sysno::ftruncate
            | Sysno::getdents
            | Sysno::getdents64
            | Sysno::getcwd
            | Sysno::chdir
            | Sysno::fchdir
            | Sysno::rename
            | Sysno::mkdir
            | Sysno::rmdir
            | Sysno::creat
            | Sysno::link
            | Sysno::unlink
            | Sysno::symlink
            | Sysno::readlink
            | Sysno::chmod
            | Sysno::fchmod
            | Sysno::chown
            | Sysno::fchown
            | Sysno::lchown
            | Sysno::umask
            | Sysno::dup
            | Sysno::dup2
            | Sysno::dup3
            | Sysno::openat
            | Sysno::mkdirat
            | Sysno::mknodat
            | Sysno::fchownat
            | Sysno::futimesat
            | Sysno::newfstatat
            | Sysno::unlinkat
            | Sysno::renameat
            | Sysno::renameat2
            | Sysno::linkat
            | Sysno::symlinkat
            | Sysno::readlinkat
            | Sysno::fchmodat
            | Sysno::faccessat
            | Sysno::faccessat2
            | Sysno::utime
            | Sysno::utimes
            | Sysno::utimensat
            | Sysno::statfs
            | Sysno::fstatfs
            | Sysno::statx
            | Sysno::fallocate
            | Sysno::fadvise64
            | Sysno::readahead
            | Sysno::splice
            | Sysno::tee
            | Sysno::vmsplice
            | Sysno::sync
            | Sysno::syncfs
            | Sysno::sync_file_range
            | Sysno::copy_file_range
            | Sysno::preadv
            | Sysno::pwritev
            | Sysno::preadv2
            | Sysno::pwritev2
            | Sysno::mknod
            | Sysno::ioctl
            | Sysno::close_range
            | Sysno::openat2
            | Sysno::inotify_init
            | Sysno::inotify_init1
            | Sysno::inotify_add_watch
            | Sysno::inotify_rm_watch
            | Sysno::fanotify_init
            | Sysno::fanotify_mark
            | Sysno::name_to_handle_at
            | Sysno::open_by_handle_at
            | Sysno::memfd_create
            | Sysno::memfd_secret => FileIo,

            Sysno::mmap
            | Sysno::munmap
            | Sysno::mremap
            | Sysno::mprotect
            | Sysno::brk
            | Sysno::msync
            | Sysno::mincore
            | Sysno::madvise
            | Sysno::mlock
            | Sysno::munlock
            | Sysno::mlockall
            | Sysno::munlockall
            | Sysno::mlock2
            | Sysno::remap_file_pages
            | Sysno::mbind
            | Sysno::set_mempolicy
            | Sysno::get_mempolicy
            | Sysno::migrate_pages
            | Sysno::move_pages
            | Sysno::pkey_mprotect
            | Sysno::pkey_alloc
            | Sysno::pkey_free
            | Sysno::process_madvise
            | Sysno::userfaultfd => Memory,

            Sysno::socket
            | Sysno::connect
            | Sysno::accept
            | Sysno::accept4
            | Sysno::sendto
            | Sysno::recvfrom
            | Sysno::sendmsg
            | Sysno::recvmsg
            | Sysno::sendmmsg
            | Sysno::recvmmsg
            | Sysno::shutdown
            | Sysno::bind
            | Sysno::listen
            | Sysno::getsockname
            | Sysno::getpeername
            | Sysno::socketpair
            | Sysno::setsockopt
            | Sysno::getsockopt => Network,

            Sysno::clone
            | Sysno::clone3
            | Sysno::fork
            | Sysno::vfork
            | Sysno::execve
            | Sysno::execveat
            | Sysno::exit
            | Sysno::exit_group
            | Sysno::wait4
            | Sysno::waitid
            | Sysno::kill
            | Sysno::tkill
            | Sysno::tgkill
            | Sysno::gettid
            | Sysno::getpid
            | Sysno::getppid
            | Sysno::setpgid
            | Sysno::getpgid
            | Sysno::getpgrp
            | Sysno::setsid
            | Sysno::getsid
            | Sysno::set_tid_address
            | Sysno::pidfd_open
            | Sysno::pidfd_getfd
            | Sysno::pidfd_send_signal
            | Sysno::process_vm_readv
            | Sysno::process_vm_writev
            | Sysno::kcmp
            | Sysno::unshare
            | Sysno::setns
            | Sysno::ptrace
            | Sysno::process_mrelease => Process,

            Sysno::rt_sigaction
            | Sysno::rt_sigprocmask
            | Sysno::rt_sigreturn
            | Sysno::rt_sigpending
            | Sysno::rt_sigtimedwait
            | Sysno::rt_sigqueueinfo
            | Sysno::rt_tgsigqueueinfo
            | Sysno::rt_sigsuspend
            | Sysno::sigaltstack
            | Sysno::pause
            | Sysno::signalfd
            | Sysno::signalfd4
            | Sysno::restart_syscall => Signal,

            Sysno::futex
            | Sysno::set_robust_list
            | Sysno::get_robust_list
            | Sysno::membarrier
            | Sysno::rseq => Sync,

            Sysno::poll
            | Sysno::select
            | Sysno::pselect6
            | Sysno::ppoll
            | Sysno::epoll_create
            | Sysno::epoll_create1
            | Sysno::epoll_ctl
            | Sysno::epoll_ctl_old
            | Sysno::epoll_wait
            | Sysno::epoll_wait_old
            | Sysno::epoll_pwait
            | Sysno::epoll_pwait2
            | Sysno::eventfd
            | Sysno::eventfd2
            | Sysno::io_setup
            | Sysno::io_destroy
            | Sysno::io_getevents
            | Sysno::io_pgetevents
            | Sysno::io_submit
            | Sysno::io_cancel
            | Sysno::io_uring_setup
            | Sysno::io_uring_enter
            | Sysno::io_uring_register => EventIo,

            Sysno::gettimeofday
            | Sysno::settimeofday
            | Sysno::time
            | Sysno::times
            | Sysno::nanosleep
            | Sysno::clock_gettime
            | Sysno::clock_settime
            | Sysno::clock_getres
            | Sysno::clock_nanosleep
            | Sysno::clock_adjtime
            | Sysno::adjtimex
            | Sysno::alarm
            | Sysno::getitimer
            | Sysno::setitimer
            | Sysno::timer_create
            | Sysno::timer_settime
            | Sysno::timer_gettime
            | Sysno::timer_getoverrun
            | Sysno::timer_delete
            | Sysno::timerfd_create
            | Sysno::timerfd_settime
            | Sysno::timerfd_gettime => Time,

            Sysno::getuid
            | Sysno::getgid
            | Sysno::geteuid
            | Sysno::getegid
            | Sysno::setuid
            | Sysno::setgid
            | Sysno::setreuid
            | Sysno::setregid
            | Sysno::getgroups
            | Sysno::setgroups
            | Sysno::setresuid
            | Sysno::getresuid
            | Sysno::setresgid
            | Sysno::getresgid
            | Sysno::setfsuid
            | Sysno::setfsgid
            | Sysno::capget
            | Sysno::capset => Identity,

            Sysno::getrlimit
            | Sysno::setrlimit
            | Sysno::prlimit64
            | Sysno::getrusage
            | Sysno::getpriority
            | Sysno::setpriority
            | Sysno::sched_yield
            | Sysno::sched_setparam
            | Sysno::sched_getparam
            | Sysno::sched_setscheduler
            | Sysno::sched_getscheduler
            | Sysno::sched_get_priority_max
            | Sysno::sched_get_priority_min
            | Sysno::sched_rr_get_interval
            | Sysno::sched_setaffinity
            | Sysno::sched_getaffinity
            | Sysno::sched_setattr
            | Sysno::sched_getattr
            | Sysno::ioprio_set
            | Sysno::ioprio_get
            | Sysno::acct
            | Sysno::getcpu => Resource,

            Sysno::pipe
            | Sysno::pipe2
            | Sysno::shmget
            | Sysno::shmat
            | Sysno::shmctl
            | Sysno::shmdt
            | Sysno::semget
            | Sysno::semop
            | Sysno::semctl
            | Sysno::semtimedop
            | Sysno::msgget
            | Sysno::msgsnd
            | Sysno::msgrcv
            | Sysno::msgctl
            | Sysno::mq_open
            | Sysno::mq_unlink
            | Sysno::mq_timedsend
            | Sysno::mq_timedreceive
            | Sysno::mq_notify
            | Sysno::mq_getsetattr => Ipc,

            Sysno::uname
            | Sysno::sysinfo
            | Sysno::syslog
            | Sysno::_sysctl
            | Sysno::sysfs
            | Sysno::personality
            | Sysno::sethostname
            | Sysno::setdomainname
            | Sysno::prctl
            | Sysno::arch_prctl
            | Sysno::modify_ldt
            | Sysno::set_thread_area
            | Sysno::get_thread_area
            | Sysno::reboot
            | Sysno::mount
            | Sysno::umount2
            | Sysno::mount_setattr
            | Sysno::pivot_root
            | Sysno::chroot
            | Sysno::swapon
            | Sysno::swapoff
            | Sysno::getrandom
            | Sysno::ustat
            | Sysno::vhangup
            | Sysno::open_tree
            | Sysno::move_mount
            | Sysno::fsopen
            | Sysno::fsconfig
            | Sysno::fsmount
            | Sysno::fspick
            | Sysno::quotactl
            | Sysno::quotactl_fd
            | Sysno::nfsservctl => System,

            Sysno::seccomp
            | Sysno::bpf
            | Sysno::add_key
            | Sysno::request_key
            | Sysno::keyctl
            | Sysno::landlock_create_ruleset
            | Sysno::landlock_add_rule
            | Sysno::landlock_restrict_self
            | Sysno::setxattr
            | Sysno::lsetxattr
            | Sysno::fsetxattr
            | Sysno::getxattr
            | Sysno::lgetxattr
            | Sysno::fgetxattr
            | Sysno::listxattr
            | Sysno::llistxattr
            | Sysno::flistxattr
            | Sysno::removexattr
            | Sysno::lremovexattr
            | Sysno::fremovexattr => Security,

            _ => Misc,
        }
    }

    /// Whether calls in this category typically *allocate* kernel resources
    /// (file descriptors, memory). Per §5.3, such syscalls are the least
    /// amenable to stubbing/faking.
    pub fn allocates_resources(self) -> bool {
        matches!(
            self,
            Category::Memory
                | Category::Network
                | Category::FileIo
                | Category::EventIo
                | Category::Ipc
        )
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Category::FileIo => "file-io",
            Category::Memory => "memory",
            Category::Network => "network",
            Category::Process => "process",
            Category::Signal => "signal",
            Category::Sync => "sync",
            Category::EventIo => "event-io",
            Category::Time => "time",
            Category::Identity => "identity",
            Category::Resource => "resource",
            Category::Ipc => "ipc",
            Category::System => "system",
            Category::Security => "security",
            Category::Misc => "misc",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_syscall_has_a_category() {
        // `of` is total by construction; check a sample plus the default arm.
        for s in Sysno::all() {
            let _ = Category::of(s);
        }
    }

    #[test]
    fn classification_spot_checks() {
        assert_eq!(Category::of(Sysno::openat), Category::FileIo);
        assert_eq!(Category::of(Sysno::brk), Category::Memory);
        assert_eq!(Category::of(Sysno::listen), Category::Network);
        assert_eq!(Category::of(Sysno::execve), Category::Process);
        assert_eq!(Category::of(Sysno::rt_sigsuspend), Category::Signal);
        assert_eq!(Category::of(Sysno::futex), Category::Sync);
        assert_eq!(Category::of(Sysno::epoll_wait), Category::EventIo);
        assert_eq!(Category::of(Sysno::clock_gettime), Category::Time);
        assert_eq!(Category::of(Sysno::setgroups), Category::Identity);
        assert_eq!(Category::of(Sysno::prlimit64), Category::Resource);
        assert_eq!(Category::of(Sysno::pipe2), Category::Ipc);
        assert_eq!(Category::of(Sysno::uname), Category::System);
        assert_eq!(Category::of(Sysno::seccomp), Category::Security);
    }

    #[test]
    fn allocation_categories() {
        assert!(Category::of(Sysno::mmap).allocates_resources());
        assert!(Category::of(Sysno::socket).allocates_resources());
        assert!(!Category::of(Sysno::getuid).allocates_resources());
    }
}
