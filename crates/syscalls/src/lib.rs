//! Linux system-call metadata used throughout the Loupe reproduction.
//!
//! This crate is the bottom substrate of the workspace: a complete x86-64
//! system-call table (number ↔ name), errno constants, coarse syscall
//! categories, *sub-features* of vectored system calls (`ioctl` requests,
//! `fcntl` commands, `prctl` options, ...) used for partial-implementation
//! analysis (§5.4 of the paper), and the pseudo-file registry (`/proc`,
//! `/dev`, ...) used for special-file interposition (§3.3).
//!
//! # Examples
//!
//! ```
//! use loupe_syscalls::{Sysno, SysnoSet};
//!
//! let openat = Sysno::from_name("openat").unwrap();
//! assert_eq!(openat.raw(), 257);
//! assert_eq!(openat.name(), "openat");
//!
//! let set: SysnoSet = [Sysno::read, Sysno::write, openat].into_iter().collect();
//! assert!(set.contains(Sysno::read));
//! ```

pub mod category;
pub mod errno;
pub mod i386;
pub mod nr;
pub mod pseudofile;
pub mod subfeature;

pub use category::Category;
pub use errno::Errno;
pub use nr::{Sysno, SysnoSet};
pub use pseudofile::{PseudoFile, PseudoFileClass};
pub use subfeature::{SubFeature, SubFeatureKey};
