//! The x86-64 system-call number table and the [`Sysno`] newtype.
//!
//! The table covers the classic range (0..=334, through `rseq`) and the
//! modern 424..=448 range (`pidfd_send_signal` through `process_mrelease`).

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

macro_rules! syscall_table {
    ($(($nr:expr, $name:ident)),* $(,)?) => {
        /// All `(number, name)` pairs in the table, sorted by number.
        pub const TABLE: &[(u32, &str)] = &[
            $(($nr, stringify!($name)),)*
        ];

        /// Well-known syscall constants, e.g. `Sysno::openat`.
        impl Sysno {
            $(
                #[allow(missing_docs, non_upper_case_globals)]
                pub const $name: Sysno = Sysno($nr);
            )*
        }
    };
}

syscall_table![
    (0, read),
    (1, write),
    (2, open),
    (3, close),
    (4, stat),
    (5, fstat),
    (6, lstat),
    (7, poll),
    (8, lseek),
    (9, mmap),
    (10, mprotect),
    (11, munmap),
    (12, brk),
    (13, rt_sigaction),
    (14, rt_sigprocmask),
    (15, rt_sigreturn),
    (16, ioctl),
    (17, pread64),
    (18, pwrite64),
    (19, readv),
    (20, writev),
    (21, access),
    (22, pipe),
    (23, select),
    (24, sched_yield),
    (25, mremap),
    (26, msync),
    (27, mincore),
    (28, madvise),
    (29, shmget),
    (30, shmat),
    (31, shmctl),
    (32, dup),
    (33, dup2),
    (34, pause),
    (35, nanosleep),
    (36, getitimer),
    (37, alarm),
    (38, setitimer),
    (39, getpid),
    (40, sendfile),
    (41, socket),
    (42, connect),
    (43, accept),
    (44, sendto),
    (45, recvfrom),
    (46, sendmsg),
    (47, recvmsg),
    (48, shutdown),
    (49, bind),
    (50, listen),
    (51, getsockname),
    (52, getpeername),
    (53, socketpair),
    (54, setsockopt),
    (55, getsockopt),
    (56, clone),
    (57, fork),
    (58, vfork),
    (59, execve),
    (60, exit),
    (61, wait4),
    (62, kill),
    (63, uname),
    (64, semget),
    (65, semop),
    (66, semctl),
    (67, shmdt),
    (68, msgget),
    (69, msgsnd),
    (70, msgrcv),
    (71, msgctl),
    (72, fcntl),
    (73, flock),
    (74, fsync),
    (75, fdatasync),
    (76, truncate),
    (77, ftruncate),
    (78, getdents),
    (79, getcwd),
    (80, chdir),
    (81, fchdir),
    (82, rename),
    (83, mkdir),
    (84, rmdir),
    (85, creat),
    (86, link),
    (87, unlink),
    (88, symlink),
    (89, readlink),
    (90, chmod),
    (91, fchmod),
    (92, chown),
    (93, fchown),
    (94, lchown),
    (95, umask),
    (96, gettimeofday),
    (97, getrlimit),
    (98, getrusage),
    (99, sysinfo),
    (100, times),
    (101, ptrace),
    (102, getuid),
    (103, syslog),
    (104, getgid),
    (105, setuid),
    (106, setgid),
    (107, geteuid),
    (108, getegid),
    (109, setpgid),
    (110, getppid),
    (111, getpgrp),
    (112, setsid),
    (113, setreuid),
    (114, setregid),
    (115, getgroups),
    (116, setgroups),
    (117, setresuid),
    (118, getresuid),
    (119, setresgid),
    (120, getresgid),
    (121, getpgid),
    (122, setfsuid),
    (123, setfsgid),
    (124, getsid),
    (125, capget),
    (126, capset),
    (127, rt_sigpending),
    (128, rt_sigtimedwait),
    (129, rt_sigqueueinfo),
    (130, rt_sigsuspend),
    (131, sigaltstack),
    (132, utime),
    (133, mknod),
    (134, uselib),
    (135, personality),
    (136, ustat),
    (137, statfs),
    (138, fstatfs),
    (139, sysfs),
    (140, getpriority),
    (141, setpriority),
    (142, sched_setparam),
    (143, sched_getparam),
    (144, sched_setscheduler),
    (145, sched_getscheduler),
    (146, sched_get_priority_max),
    (147, sched_get_priority_min),
    (148, sched_rr_get_interval),
    (149, mlock),
    (150, munlock),
    (151, mlockall),
    (152, munlockall),
    (153, vhangup),
    (154, modify_ldt),
    (155, pivot_root),
    (156, _sysctl),
    (157, prctl),
    (158, arch_prctl),
    (159, adjtimex),
    (160, setrlimit),
    (161, chroot),
    (162, sync),
    (163, acct),
    (164, settimeofday),
    (165, mount),
    (166, umount2),
    (167, swapon),
    (168, swapoff),
    (169, reboot),
    (170, sethostname),
    (171, setdomainname),
    (172, iopl),
    (173, ioperm),
    (174, create_module),
    (175, init_module),
    (176, delete_module),
    (177, get_kernel_syms),
    (178, query_module),
    (179, quotactl),
    (180, nfsservctl),
    (181, getpmsg),
    (182, putpmsg),
    (183, afs_syscall),
    (184, tuxcall),
    (185, security),
    (186, gettid),
    (187, readahead),
    (188, setxattr),
    (189, lsetxattr),
    (190, fsetxattr),
    (191, getxattr),
    (192, lgetxattr),
    (193, fgetxattr),
    (194, listxattr),
    (195, llistxattr),
    (196, flistxattr),
    (197, removexattr),
    (198, lremovexattr),
    (199, fremovexattr),
    (200, tkill),
    (201, time),
    (202, futex),
    (203, sched_setaffinity),
    (204, sched_getaffinity),
    (205, set_thread_area),
    (206, io_setup),
    (207, io_destroy),
    (208, io_getevents),
    (209, io_submit),
    (210, io_cancel),
    (211, get_thread_area),
    (212, lookup_dcookie),
    (213, epoll_create),
    (214, epoll_ctl_old),
    (215, epoll_wait_old),
    (216, remap_file_pages),
    (217, getdents64),
    (218, set_tid_address),
    (219, restart_syscall),
    (220, semtimedop),
    (221, fadvise64),
    (222, timer_create),
    (223, timer_settime),
    (224, timer_gettime),
    (225, timer_getoverrun),
    (226, timer_delete),
    (227, clock_settime),
    (228, clock_gettime),
    (229, clock_getres),
    (230, clock_nanosleep),
    (231, exit_group),
    (232, epoll_wait),
    (233, epoll_ctl),
    (234, tgkill),
    (235, utimes),
    (236, vserver),
    (237, mbind),
    (238, set_mempolicy),
    (239, get_mempolicy),
    (240, mq_open),
    (241, mq_unlink),
    (242, mq_timedsend),
    (243, mq_timedreceive),
    (244, mq_notify),
    (245, mq_getsetattr),
    (246, kexec_load),
    (247, waitid),
    (248, add_key),
    (249, request_key),
    (250, keyctl),
    (251, ioprio_set),
    (252, ioprio_get),
    (253, inotify_init),
    (254, inotify_add_watch),
    (255, inotify_rm_watch),
    (256, migrate_pages),
    (257, openat),
    (258, mkdirat),
    (259, mknodat),
    (260, fchownat),
    (261, futimesat),
    (262, newfstatat),
    (263, unlinkat),
    (264, renameat),
    (265, linkat),
    (266, symlinkat),
    (267, readlinkat),
    (268, fchmodat),
    (269, faccessat),
    (270, pselect6),
    (271, ppoll),
    (272, unshare),
    (273, set_robust_list),
    (274, get_robust_list),
    (275, splice),
    (276, tee),
    (277, sync_file_range),
    (278, vmsplice),
    (279, move_pages),
    (280, utimensat),
    (281, epoll_pwait),
    (282, signalfd),
    (283, timerfd_create),
    (284, eventfd),
    (285, fallocate),
    (286, timerfd_settime),
    (287, timerfd_gettime),
    (288, accept4),
    (289, signalfd4),
    (290, eventfd2),
    (291, epoll_create1),
    (292, dup3),
    (293, pipe2),
    (294, inotify_init1),
    (295, preadv),
    (296, pwritev),
    (297, rt_tgsigqueueinfo),
    (298, perf_event_open),
    (299, recvmmsg),
    (300, fanotify_init),
    (301, fanotify_mark),
    (302, prlimit64),
    (303, name_to_handle_at),
    (304, open_by_handle_at),
    (305, clock_adjtime),
    (306, syncfs),
    (307, sendmmsg),
    (308, setns),
    (309, getcpu),
    (310, process_vm_readv),
    (311, process_vm_writev),
    (312, kcmp),
    (313, finit_module),
    (314, sched_setattr),
    (315, sched_getattr),
    (316, renameat2),
    (317, seccomp),
    (318, getrandom),
    (319, memfd_create),
    (320, kexec_file_load),
    (321, bpf),
    (322, execveat),
    (323, userfaultfd),
    (324, membarrier),
    (325, mlock2),
    (326, copy_file_range),
    (327, preadv2),
    (328, pwritev2),
    (329, pkey_mprotect),
    (330, pkey_alloc),
    (331, pkey_free),
    (332, statx),
    (333, io_pgetevents),
    (334, rseq),
    (424, pidfd_send_signal),
    (425, io_uring_setup),
    (426, io_uring_enter),
    (427, io_uring_register),
    (428, open_tree),
    (429, move_mount),
    (430, fsopen),
    (431, fsconfig),
    (432, fsmount),
    (433, fspick),
    (434, pidfd_open),
    (435, clone3),
    (436, close_range),
    (437, openat2),
    (438, pidfd_getfd),
    (439, faccessat2),
    (440, process_madvise),
    (441, epoll_pwait2),
    (442, mount_setattr),
    (443, quotactl_fd),
    (444, landlock_create_ruleset),
    (445, landlock_add_rule),
    (446, landlock_restrict_self),
    (447, memfd_secret),
    (448, process_mrelease),
];

/// An x86-64 Linux system-call number.
///
/// The newtype ([C-NEWTYPE]) keeps numbers and other integers apart across
/// the workspace and carries the name table with it.
///
/// # Examples
///
/// ```
/// use loupe_syscalls::Sysno;
///
/// assert_eq!(Sysno::mmap.raw(), 9);
/// assert_eq!(Sysno::from_raw(202).unwrap(), Sysno::futex);
/// assert_eq!("epoll_create".parse::<Sysno>().unwrap().raw(), 213);
/// ```
///
/// [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Sysno(u32);

impl Sysno {
    /// Creates a `Sysno` from a raw number if it exists in the table.
    ///
    /// # Examples
    ///
    /// ```
    /// use loupe_syscalls::Sysno;
    /// assert!(Sysno::from_raw(59).is_some());   // execve
    /// assert!(Sysno::from_raw(10_000).is_none());
    /// ```
    pub fn from_raw(nr: u32) -> Option<Sysno> {
        lookup_name(nr).map(|_| Sysno(nr))
    }

    /// Creates a `Sysno` from its kernel name.
    ///
    /// # Examples
    ///
    /// ```
    /// use loupe_syscalls::Sysno;
    /// assert_eq!(Sysno::from_name("futex"), Some(Sysno::futex));
    /// assert_eq!(Sysno::from_name("not_a_syscall"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<Sysno> {
        TABLE
            .iter()
            .find(|(_, n)| *n == name)
            .map(|(nr, _)| Sysno(*nr))
    }

    /// The raw syscall number.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The kernel name of the syscall.
    ///
    /// # Panics
    ///
    /// Never panics for values constructed through [`Sysno::from_raw`],
    /// [`Sysno::from_name`] or the named constants.
    pub fn name(self) -> &'static str {
        lookup_name(self.0).expect("Sysno constructed from table")
    }

    /// Iterates over every syscall in the table, in numeric order.
    ///
    /// # Examples
    ///
    /// ```
    /// use loupe_syscalls::Sysno;
    /// assert!(Sysno::all().count() > 300);
    /// ```
    pub fn all() -> impl Iterator<Item = Sysno> {
        TABLE.iter().map(|(nr, _)| Sysno(*nr))
    }

    /// Whether this syscall is *vectored*: its behaviour is selected by an
    /// operation argument, making partial implementation meaningful (§5.4).
    pub fn is_vectored(self) -> bool {
        matches!(
            self,
            Sysno::ioctl
                | Sysno::fcntl
                | Sysno::prctl
                | Sysno::arch_prctl
                | Sysno::madvise
                | Sysno::prlimit64
                | Sysno::futex
                | Sysno::mmap
        )
    }
}

fn lookup_name(nr: u32) -> Option<&'static str> {
    TABLE
        .binary_search_by_key(&nr, |(n, _)| *n)
        .ok()
        .map(|idx| TABLE[idx].1)
}

impl fmt::Display for Sysno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.0)
    }
}

/// Error returned when parsing a [`Sysno`] from an unknown name or number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSysnoError {
    input: String,
}

impl fmt::Display for ParseSysnoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown system call `{}`", self.input)
    }
}

impl std::error::Error for ParseSysnoError {}

impl FromStr for Sysno {
    type Err = ParseSysnoError;

    /// Parses either a kernel name (`"openat"`) or a decimal number
    /// (`"257"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Ok(nr) = s.parse::<u32>() {
            return Sysno::from_raw(nr).ok_or_else(|| ParseSysnoError { input: s.into() });
        }
        Sysno::from_name(s).ok_or_else(|| ParseSysnoError { input: s.into() })
    }
}

/// An ordered set of system calls.
///
/// Thin wrapper around `BTreeSet<Sysno>` with the conversions and set
/// algebra the planner needs.
///
/// # Examples
///
/// ```
/// use loupe_syscalls::{Sysno, SysnoSet};
///
/// let set: SysnoSet = ["read", "write", "openat"]
///     .iter()
///     .map(|n| Sysno::from_name(n).unwrap())
///     .collect();
/// assert_eq!(set.len(), 3);
/// assert!(set.contains(Sysno::openat));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SysnoSet(BTreeSet<Sysno>);

impl SysnoSet {
    /// Creates an empty set.
    pub fn new() -> SysnoSet {
        SysnoSet::default()
    }

    /// Number of syscalls in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Inserts a syscall; returns `true` if it was not already present.
    pub fn insert(&mut self, s: Sysno) -> bool {
        self.0.insert(s)
    }

    /// Removes a syscall; returns `true` if it was present.
    pub fn remove(&mut self, s: Sysno) -> bool {
        self.0.remove(&s)
    }

    /// Whether the set contains `s`.
    pub fn contains(&self, s: Sysno) -> bool {
        self.0.contains(&s)
    }

    /// Iterates in ascending numeric order.
    pub fn iter(&self) -> impl Iterator<Item = Sysno> + '_ {
        self.0.iter().copied()
    }

    /// Set union.
    pub fn union(&self, other: &SysnoSet) -> SysnoSet {
        SysnoSet(self.0.union(&other.0).copied().collect())
    }

    /// Set intersection.
    pub fn intersection(&self, other: &SysnoSet) -> SysnoSet {
        SysnoSet(self.0.intersection(&other.0).copied().collect())
    }

    /// Elements of `self` not in `other`.
    pub fn difference(&self, other: &SysnoSet) -> SysnoSet {
        SysnoSet(self.0.difference(&other.0).copied().collect())
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset(&self, other: &SysnoSet) -> bool {
        self.0.is_subset(&other.0)
    }

    /// Inner set, borrowed.
    pub fn as_btree(&self) -> &BTreeSet<Sysno> {
        &self.0
    }

    /// Consumes the wrapper and returns the inner set.
    pub fn into_inner(self) -> BTreeSet<Sysno> {
        self.0
    }
}

impl FromIterator<Sysno> for SysnoSet {
    fn from_iter<T: IntoIterator<Item = Sysno>>(iter: T) -> Self {
        SysnoSet(iter.into_iter().collect())
    }
}

impl Extend<Sysno> for SysnoSet {
    fn extend<T: IntoIterator<Item = Sysno>>(&mut self, iter: T) {
        self.0.extend(iter)
    }
}

impl IntoIterator for SysnoSet {
    type Item = Sysno;
    type IntoIter = std::collections::btree_set::IntoIter<Sysno>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a SysnoSet {
    type Item = &'a Sysno;
    type IntoIter = std::collections::btree_set::Iter<'a, Sysno>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl From<BTreeSet<Sysno>> for SysnoSet {
    fn from(set: BTreeSet<Sysno>) -> Self {
        SysnoSet(set)
    }
}

impl fmt::Display for SysnoSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for s in &self.0 {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}", s.name())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_unique() {
        for w in TABLE.windows(2) {
            assert!(w[0].0 < w[1].0, "table must be strictly ascending: {w:?}");
        }
    }

    #[test]
    fn names_are_unique() {
        let names: BTreeSet<_> = TABLE.iter().map(|(_, n)| *n).collect();
        assert_eq!(names.len(), TABLE.len());
    }

    #[test]
    fn well_known_numbers_match_the_kernel() {
        // Numbers referenced throughout the paper.
        for (name, nr) in [
            ("read", 0),
            ("write", 1),
            ("close", 3),
            ("mmap", 9),
            ("brk", 12),
            ("ioctl", 16),
            ("writev", 20),
            ("mremap", 25),
            ("socket", 41),
            ("connect", 42),
            ("bind", 49),
            ("listen", 50),
            ("clone", 56),
            ("execve", 59),
            ("uname", 63),
            ("fcntl", 72),
            ("unlink", 87),
            ("getrlimit", 97),
            ("getrusage", 98),
            ("sysinfo", 99),
            ("geteuid", 107),
            ("getppid", 110),
            ("setsid", 112),
            ("setgroups", 116),
            ("rt_sigsuspend", 130),
            ("sigaltstack", 131),
            ("utime", 132),
            ("prctl", 157),
            ("arch_prctl", 158),
            ("gettid", 186),
            ("futex", 202),
            ("epoll_create", 213),
            ("set_tid_address", 218),
            ("clock_gettime", 228),
            ("epoll_wait", 232),
            ("epoll_ctl", 233),
            ("inotify_rm_watch", 255),
            ("openat", 257),
            ("futimesat", 261),
            ("set_robust_list", 273),
            ("timerfd_create", 283),
            ("eventfd", 284),
            ("accept4", 288),
            ("eventfd2", 290),
            ("epoll_create1", 291),
            ("pipe2", 293),
            ("prlimit64", 302),
            ("getrandom", 318),
        ] {
            assert_eq!(
                Sysno::from_name(name).map(Sysno::raw),
                Some(nr),
                "{name} should be {nr}"
            );
        }
    }

    #[test]
    fn roundtrip_raw_name() {
        for s in Sysno::all() {
            assert_eq!(Sysno::from_name(s.name()), Some(s));
            assert_eq!(Sysno::from_raw(s.raw()), Some(s));
        }
    }

    #[test]
    fn parse_accepts_names_and_numbers() {
        assert_eq!("openat".parse::<Sysno>().unwrap(), Sysno::openat);
        assert_eq!("257".parse::<Sysno>().unwrap(), Sysno::openat);
        assert!("bogus".parse::<Sysno>().is_err());
        assert!("9999".parse::<Sysno>().is_err());
    }

    #[test]
    fn display_includes_name_and_number() {
        assert_eq!(Sysno::futex.to_string(), "futex (202)");
    }

    #[test]
    fn set_algebra() {
        let a: SysnoSet = [Sysno::read, Sysno::write, Sysno::openat]
            .into_iter()
            .collect();
        let b: SysnoSet = [Sysno::write, Sysno::close].into_iter().collect();
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).len(), 1);
        assert_eq!(a.difference(&b).len(), 2);
        assert!(a.intersection(&b).is_subset(&a));
    }

    #[test]
    fn set_display_is_never_empty() {
        assert_eq!(SysnoSet::new().to_string(), "{}");
    }

    #[test]
    fn serde_roundtrip() {
        let set: SysnoSet = [Sysno::mmap, Sysno::futex].into_iter().collect();
        let json = serde_json::to_string(&set).unwrap();
        let back: SysnoSet = serde_json::from_str(&json).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn vectored_syscalls() {
        assert!(Sysno::ioctl.is_vectored());
        assert!(Sysno::fcntl.is_vectored());
        assert!(!Sysno::read.is_vectored());
    }
}
