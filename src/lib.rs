//! Loupe — a reproduction of *"Loupe: Driving the Development of OS
//! Compatibility Layers"* (Lefeuvre et al., ASPLOS 2024) as a Rust
//! workspace.
//!
//! This facade crate re-exports the public API of the workspace members so
//! downstream users can depend on a single crate:
//!
//! * [`syscalls`] — Linux syscall metadata (numbers, errno, sub-features,
//!   pseudo-files).
//! * [`kernel`] — the simulated Linux kernel substrate applications run on.
//! * [`apps`] — modelled applications, libc models and workloads.
//! * [`statics`] — binary- and source-level static analysers (baselines).
//! * [`core`] — the Loupe dynamic-analysis engine (the paper's primary
//!   contribution).
//! * [`trace`] — a real `ptrace(2)` backend for real Linux binaries.
//! * [`plan`] — incremental OS support plans, effort-savings analysis and
//!   API importance.
//! * [`db`] — the measurement database (loupedb analogue).
//! * [`gentests`] — trace-driven conformance suite generation: stored
//!   measurements compiled into executable per-app compatibility tests.
//! * [`sweep`] — concurrent fleet-wide sweeps and the generated
//!   compatibility-matrix documentation.
//!
//! # Quickstart
//!
//! ```
//! use loupe::apps::{registry, Workload};
//! use loupe::core::{AnalysisConfig, Engine};
//!
//! // Measure which syscalls Nginx needs to serve a health-check workload.
//! let app = registry::find("nginx").expect("model exists");
//! let engine = Engine::new(AnalysisConfig::default());
//! let report = engine.analyze(app.as_ref(), Workload::HealthCheck).unwrap();
//!
//! // Some syscalls must be implemented, but many can be stubbed or faked.
//! assert!(report.required().len() < report.traced().len());
//! ```

pub use loupe_apps as apps;
pub use loupe_core as core;
pub use loupe_db as db;
pub use loupe_gentests as gentests;
pub use loupe_kernel as kernel;
pub use loupe_plan as plan;
pub use loupe_serve as serve;
pub use loupe_static as statics;
pub use loupe_sweep as sweep;
pub use loupe_syscalls as syscalls;
pub use loupe_trace as trace;
