//! Minimal JSON text layer for the vendored `serde` stand-in.
//!
//! Renders [`serde::Value`] trees to JSON and parses JSON back into them.
//! Like real `serde_json`, integer map keys are rendered as quoted strings
//! (`{"9": 7}`) and the integer deserializers accept numeric strings so
//! `BTreeMap<Sysno, _>` round-trips.

use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Fails on map keys that are not strings or integers, and on non-finite
/// floats.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as human-readable, 2-space-indented JSON.
///
/// # Errors
///
/// As for [`to_string`].
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Fails on malformed JSON or shape mismatches.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_number(f: f64, out: &mut String) -> Result<(), Error> {
    if !f.is_finite() {
        return Err(Error::new("non-finite float is not valid JSON"));
    }
    let text = format!("{f}");
    out.push_str(&text);
    // Keep the float/integer distinction through a round-trip.
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
    Ok(())
}

fn render_key(key: &Value, out: &mut String) -> Result<(), Error> {
    match key {
        Value::Str(s) => {
            escape_into(s, out);
            Ok(())
        }
        Value::U64(n) => {
            out.push_str(&format!("\"{n}\""));
            Ok(())
        }
        Value::I64(n) => {
            out.push_str(&format!("\"{n}\""));
            Ok(())
        }
        other => Err(Error::new(format!(
            "map key must be string-like, got {}",
            other.kind()
        ))),
    }
}

fn render(v: &Value, indent: Option<usize>, level: usize, out: &mut String) -> Result<(), Error> {
    let (nl, pad, pad_in, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * level),
            " ".repeat(w * (level + 1)),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => render_number(*f, out)?,
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                render(item, indent, level + 1, out)?;
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                render_key(k, out)?;
                out.push_str(colon);
                render(val, indent, level + 1, out)?;
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Fails on malformed JSON.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a maximal run of unescaped, non-quote bytes
                    // and validate it as UTF-8 once. Validating from
                    // `self.pos` to the end of input per character made
                    // parsing quadratic in the document size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn integer_map_keys_roundtrip() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<u32, String> = BTreeMap::new();
        m.insert(9, "mmap".into());
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"9\":\"mmap\"}");
        let back: BTreeMap<u32, String> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
