//! Minimal stand-in for the `proptest` crate.
//!
//! Provides deterministic random sampling (no shrinking): every
//! `proptest!` test runs [`CASES`] cases with an RNG seeded from the test
//! name, so failures reproduce exactly across runs and machines.
//!
//! Supported strategy surface (what the workspace's property tests use):
//! integer ranges, `prop_map`, `collection::vec`, `array::uniform6`,
//! `bool::ANY`, and string literals restricted to the `[class]{min,max}`
//! regex form.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

/// Cases per property (a compromise between coverage and suite runtime).
pub const CASES: u32 = 64;

/// The per-test RNG.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates an RNG whose seed is derived from `name` (FNV-1a), so each
    /// property gets a distinct but reproducible stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of sampled values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String strategies: a `&'static str` literal is interpreted as a regex
/// of the restricted `[class]{min,max}` form (all the tests use).
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("unsupported string pattern `{self}` (expected `[class]{{min,max}}`)")
        });
        let len = min + (rng.next_u64() as usize) % (max - min + 1);
        (0..len)
            .map(|_| chars[(rng.next_u64() as usize) % chars.len()])
            .collect()
    }
}

/// Parses `[a-z_0]{1,8}` into (alphabet, min, max).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let rest = rest.strip_prefix('{')?;
    let counts = rest.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    let mut chars = Vec::new();
    let class: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            for c in lo..=hi {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() || min > max {
        return None;
    }
    Some((chars, min, max))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Samples vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[T; 6]`.
    pub struct Uniform6<S>(S);

    /// Samples 6-element arrays of `element` values.
    pub fn uniform6<S: Strategy>(element: S) -> Uniform6<S> {
        Uniform6(element)
    }

    impl<S: Strategy> Strategy for Uniform6<S> {
        type Value = [S::Value; 6];

        fn sample(&self, rng: &mut TestRng) -> [S::Value; 6] {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// The uniform boolean strategy.
    pub struct AnyBool;

    /// Uniformly random booleans.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for _ in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    // The case body runs in a closure so `prop_assume!`
                    // can skip to the next case with `return`.
                    let __run = || { $body };
                    __run();
                }
            }
        )*
    };
}

/// Asserts within a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}
