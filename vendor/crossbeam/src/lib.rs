//! Minimal stand-in for the `crossbeam` crate, covering the two APIs the
//! workspace uses: `thread::scope` (delegating to `std::thread::scope`)
//! and `queue::SegQueue` (a mutex-protected deque — contention here is
//! coarse work distribution, not a hot path).

/// Scoped threads.
pub mod thread {
    /// Result of a scope: `Err` carries a child panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle; closures spawned through it may borrow from the
    /// enclosing stack frame.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Mirroring crossbeam, the closure
        /// receives the scope again so it can spawn nested work.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. A panicking child surfaces as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> SegQueue<T> {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes an element onto the back.
        pub fn push(&self, value: T) {
            self.inner.lock().expect("queue poisoned").push_back(value);
        }

        /// Pops from the front, `None` when empty.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("queue poisoned").pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("queue poisoned").len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}
