//! Minimal stand-in for the `bytes` crate: an immutable, cheaply
//! clonable byte buffer backed by `Arc<[u8]>`.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable contiguous slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static byte slice (no copy in the real crate; here a copy
    /// into the shared allocation, which callers cannot observe).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: bytes.into() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes { data: bytes.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns a buffer holding `self[range]`.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self.data[start..end].into(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes {
            data: v.into_bytes().into(),
        }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.data == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}
