//! Minimal stand-in for the `rand` crate.
//!
//! The fleet generator only needs a deterministic, seedable generator
//! with `random_bool`/`random_range`. [`rngs::StdRng`] is SplitMix64 —
//! statistically fine for profile generation and, crucially, stable
//! across platforms and releases, which keeps generated app profiles
//! (and everything derived from them: databases, support matrices)
//! byte-reproducible.

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(&self, rng: &mut dyn RngCore) -> T;
}

macro_rules! sample_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

sample_range_impl!(u8, u16, u32, u64, usize);

macro_rules! sample_range_signed_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo + (rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}

sample_range_signed_impl!(i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 bits of randomness, exactly representable in an f64.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(4..=10);
            assert!((4..=10).contains(&x));
            let y = rng.random_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
