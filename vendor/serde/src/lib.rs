//! A minimal, self-contained stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides just the surface the workspace uses: `Serialize` and
//! `Deserialize` traits (with derive macros re-exported from
//! `serde_derive`), implemented over a simple owned [`Value`] tree that
//! `serde_json` renders to and parses from JSON text.
//!
//! Semantics follow real serde where the workspace depends on them:
//! newtype structs serialize as their inner value, C-like enum variants as
//! their name, data-carrying variants as externally tagged single-entry
//! maps, and `#[serde(default)]` fields tolerate absence.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered map (keys are rendered as JSON object keys).
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Borrow as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the data model.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on shape or type mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks a field up in a struct map (helper for derived impls).
pub fn get_field<'a>(map: &'a [(Value, Value)], name: &str) -> Option<&'a Value> {
    map.iter()
        .find(|(k, _)| matches!(k, Value::Str(s) if s == name))
        .map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 => *f as u64,
                    // JSON object keys arrive as strings; integer keys
                    // (e.g. syscall numbers) parse back here.
                    Value::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| Error::custom(format!("expected integer, got `{s}`")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

uint_impl!(u8, u16, u32, u64, usize);

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => i64::try_from(*n).map_err(|_| Error::custom("integer out of range"))?,
                    Value::I64(n) => *n,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    Value::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| Error::custom(format!("expected integer, got `{s}`")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Str(s) => s
                .parse::<f64>()
                .map_err(|_| Error::custom(format!("expected number, got `{s}`"))),
            other => Err(Error::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected 2-element sequence")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom("expected 3-element sequence")),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom(format!("expected map, got {}", v.kind())))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}
