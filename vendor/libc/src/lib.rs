//! Minimal stand-in for the `libc` crate: exactly the x86-64 Linux FFI
//! surface the `loupe-trace` ptrace backend, the CLI's SIGPIPE reset,
//! the database's cross-process advisory file lock (`flock`) and the
//! snapshot index's memory mapping (`mmap`/`munmap`) use. Types and
//! constants match the kernel/glibc ABI.

#![cfg(target_os = "linux")]
#![allow(non_camel_case_types)]
#![allow(clippy::missing_safety_doc)]

pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type c_void = core::ffi::c_void;
pub type pid_t = i32;
pub type size_t = usize;
pub type off_t = i64;
pub type sighandler_t = usize;

/// Default signal disposition.
pub const SIG_DFL: sighandler_t = 0;
/// Broken-pipe signal number.
pub const SIGPIPE: c_int = 13;
/// Trace/breakpoint trap signal number.
pub const SIGTRAP: c_int = 5;

/// `open(2)` write-only flag.
pub const O_WRONLY: c_int = 1;

/// `flock(2)` exclusive-lock operation.
pub const LOCK_EX: c_int = 2;
/// `flock(2)` unlock operation.
pub const LOCK_UN: c_int = 8;

/// `mmap(2)` read protection.
pub const PROT_READ: c_int = 1;
/// `mmap(2)` shared mapping.
pub const MAP_SHARED: c_int = 1;
/// `mmap(2)` private copy-on-write mapping.
pub const MAP_PRIVATE: c_int = 2;
/// `mmap(2)` failure sentinel.
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

pub const PTRACE_TRACEME: c_int = 0;
pub const PTRACE_PEEKDATA: c_int = 2;
pub const PTRACE_PEEKUSER: c_int = 3;
pub const PTRACE_POKEUSER: c_int = 6;
pub const PTRACE_SYSCALL: c_int = 24;
pub const PTRACE_SETOPTIONS: c_int = 0x4200;
pub const PTRACE_O_TRACESYSGOOD: c_int = 1;

extern "C" {
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
    pub fn fork() -> pid_t;
    pub fn open(path: *const c_char, oflag: c_int, ...) -> c_int;
    pub fn dup2(src: c_int, dst: c_int) -> c_int;
    pub fn execvp(file: *const c_char, argv: *const *const c_char) -> c_int;
    pub fn _exit(status: c_int) -> !;
    pub fn waitpid(pid: pid_t, status: *mut c_int, options: c_int) -> pid_t;
    pub fn ptrace(request: c_int, ...) -> c_long;
    pub fn flock(fd: c_int, operation: c_int) -> c_int;
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
}

/// Did the child exit normally?
#[allow(non_snake_case)]
pub fn WIFEXITED(status: c_int) -> bool {
    status & 0x7f == 0
}

/// Exit code of a normally exited child.
#[allow(non_snake_case)]
pub fn WEXITSTATUS(status: c_int) -> c_int {
    (status >> 8) & 0xff
}

/// Was the child terminated by a signal?
#[allow(non_snake_case)]
pub fn WIFSIGNALED(status: c_int) -> bool {
    // The signed-char cast matters: a stopped status (low byte 0x7f)
    // wraps to -128 and must not read as signaled.
    (((status & 0x7f) + 1) as i8) >> 1 > 0
}

/// Is the child stopped?
#[allow(non_snake_case)]
pub fn WIFSTOPPED(status: c_int) -> bool {
    status & 0xff == 0x7f
}

/// Stop signal of a stopped child.
#[allow(non_snake_case)]
pub fn WSTOPSIG(status: c_int) -> c_int {
    WEXITSTATUS(status)
}
