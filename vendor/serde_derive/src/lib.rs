//! Minimal `#[derive(Serialize, Deserialize)]` macros for the vendored
//! `serde` stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (the build
//! environment has no `syn`/`quote`), covering exactly the shapes the
//! workspace uses:
//!
//! * structs with named fields (honouring `#[serde(default)]` per field);
//! * tuple structs — one field serializes as the inner value (real
//!   serde's newtype semantics, which also makes `#[serde(transparent)]`
//!   a no-op here), more fields as a sequence;
//! * unit structs;
//! * enums with unit variants (serialized as the variant-name string),
//!   and tuple variants (externally tagged: `{"Variant": payload}`).
//!
//! Generics, struct variants and renaming attributes are not supported
//! and fail with a compile error naming the construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct FieldDef {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
}

#[derive(Debug)]
struct VariantDef {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum InputKind {
    NamedStruct(Vec<FieldDef>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<VariantDef>),
}

#[derive(Debug)]
struct Input {
    name: String,
    kind: InputKind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Consumes leading attributes from `toks[*i..]`, returning the rendered
/// contents of every `#[serde(...)]` attribute seen (e.g. `"default"`).
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut serde_attrs = Vec::new();
    while *i + 1 < toks.len() {
        match (&toks[*i], &toks[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            serde_attrs.push(args.stream().to_string());
                        }
                    }
                }
                *i += 2;
            }
            _ => break,
        }
    }
    serde_attrs
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Counts top-level comma-separated items in a token sequence, treating
/// `<...>` angle sections as nested (token trees do not group them).
fn count_top_level_items(toks: &[TokenTree]) -> usize {
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut items = 1;
    let mut saw_tokens_in_item = false;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    items += 1;
                    saw_tokens_in_item = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_in_item = true;
    }
    if !saw_tokens_in_item {
        items -= 1; // trailing comma
    }
    items
}

/// Parses the fields of a named-field struct body.
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<FieldDef>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let attrs = skip_attrs(body, &mut i);
        if i >= body.len() {
            break;
        }
        skip_vis(body, &mut i);
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        // Skip the type: everything up to a top-level comma.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(FieldDef {
            default: attrs.iter().any(|a| a.contains("default")),
            name,
        });
    }
    Ok(fields)
}

/// Parses the variants of an enum body.
fn parse_variants(body: &[TokenTree]) -> Result<Vec<VariantDef>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let _attrs = skip_attrs(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Tuple(count_top_level_items(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!("struct variant `{name}` is not supported"));
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(VariantDef { name, kind });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let _attrs = skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let keyword = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` is not supported"));
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                InputKind::NamedStruct(parse_named_fields(&body)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                InputKind::TupleStruct(count_top_level_items(&body))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => InputKind::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                InputKind::Enum(parse_variants(&body)?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Input { name, kind })
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.kind {
        InputKind::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "map.push((::serde::Value::Str(String::from({n:?})), \
                         ::serde::Serialize::to_value(&self.{n})));\n",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "let mut map: Vec<(::serde::Value, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(map)"
            )
        }
        InputKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        InputKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        InputKind::UnitStruct => "::serde::Value::Null".to_owned(),
        InputKind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(String::from({v:?})),\n",
                        v = v.name
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{v}(x0) => ::serde::Value::Map(vec![(\
                         ::serde::Value::Str(String::from({v:?})), \
                         ::serde::Serialize::to_value(x0))]),\n",
                        v = v.name
                    ),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Map(vec![(\
                             ::serde::Value::Str(String::from({v:?})), \
                             ::serde::Value::Seq(vec![{items}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.kind {
        InputKind::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    if f.default {
                        format!(
                            "{n}: match ::serde::get_field(map, {n:?}) {{\n\
                             Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                             None => Default::default(),\n}},\n",
                            n = f.name
                        )
                    } else {
                        format!(
                            "{n}: ::serde::Deserialize::from_value(\
                             ::serde::get_field(map, {n:?}).ok_or_else(|| \
                             ::serde::Error::custom(concat!(\"missing field `\", {n:?}, \"` in {name}\")))?\
                             )?,\n",
                            n = f.name
                        )
                    }
                })
                .collect();
            format!(
                "let map = v.as_map().ok_or_else(|| \
                 ::serde::Error::custom(concat!(\"expected map for {name}\")))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        InputKind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        InputKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = v.as_seq().ok_or_else(|| \
                 ::serde::Error::custom(\"expected sequence for {name}\"))?;\n\
                 if seq.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        InputKind::UnitStruct => format!("Ok({name})"),
        InputKind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{v:?} => return Ok({name}::{v}),\n", v = v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(1) => Some(format!(
                        "{v:?} => return Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                            .collect();
                        Some(format!(
                            "{v:?} => {{\n\
                             let seq = payload.as_seq().ok_or_else(|| \
                             ::serde::Error::custom(\"expected sequence payload\"))?;\n\
                             if seq.len() != {n} {{ return Err(::serde::Error::custom(\"wrong variant arity\")); }}\n\
                             return Ok({name}::{v}({items}));\n}}\n",
                            v = v.name,
                            items = items.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => {{\n\
                 match s.as_str() {{\n{unit_arms}\
                 _ => {{}}\n}}\n\
                 Err(::serde::Error::custom(format!(\"unknown {name} variant `{{s}}`\")))\n\
                 }}\n\
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (tag, payload) = &m[0];\n\
                 let tag = tag.as_str().ok_or_else(|| \
                 ::serde::Error::custom(\"expected string variant tag\"))?;\n\
                 match tag {{\n{data_arms}\
                 _ => {{}}\n}}\n\
                 Err(::serde::Error::custom(format!(\"unknown {name} variant `{{tag}}`\")))\n\
                 }}\n\
                 other => Err(::serde::Error::custom(format!(\
                 \"expected {name} variant, got {{}}\", other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<{name}, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
