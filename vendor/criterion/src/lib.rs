//! Minimal stand-in for the `criterion` crate: same API shape
//! (`Criterion`, groups, `Bencher::iter`/`iter_batched`,
//! `criterion_group!`/`criterion_main!`), measurement reduced to a
//! warm-up pass plus a timed pass with mean wall-clock per iteration.

use std::time::Instant;

/// How batched inputs are grouped (accepted for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifies a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives the measured routine.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..self.iters.min(3) {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        report(start, self.iters);
    }

    /// Times `routine` with a fresh `setup` product per iteration
    /// (setup time excluded from the running total it reports).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = std::time::Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        println!(
            "    time: {:>12.1} ns/iter ({} iters)",
            total.as_nanos() as f64 / self.iters as f64,
            self.iters
        );
    }
}

fn report(start: Instant, iters: u64) {
    let total = start.elapsed();
    println!(
        "    time: {:>12.1} ns/iter ({} iters)",
        total.as_nanos() as f64 / iters as f64,
        iters
    );
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.iters = (n as u64).max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.parent.run(&full, f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.parent.run(&full, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 10 }
    }
}

impl Criterion {
    fn run<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        println!("benchmarking {name}");
        let mut b = Bencher { iters: self.iters };
        f(&mut b);
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = name.to_string();
        self.run(&full, f);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            parent: self,
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
