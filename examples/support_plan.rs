//! Generate an incremental support plan for an OS under development
//! (the Table 1 workflow): measure a set of target applications, then ask
//! the planner in which order to implement the missing syscalls.
//!
//! ```sh
//! cargo run --example support_plan
//! ```

use loupe::apps::{registry, Workload};
use loupe::core::{AnalysisConfig, Engine};
use loupe::plan::{os, AppRequirement, SupportPlan};

fn main() {
    // 1. Measure the target applications (a subset keeps the example
    //    fast; use registry::cloud_apps() for the full Table 1 set).
    let engine = Engine::new(AnalysisConfig::fast());
    let mut requirements = Vec::new();
    for name in [
        "nginx",
        "redis",
        "memcached",
        "sqlite",
        "lighttpd",
        "weborf",
        "webfsd",
    ] {
        let app = registry::find(name).expect("app in registry");
        let report = engine
            .analyze(app.as_ref(), Workload::Benchmark)
            .expect("baseline passes");
        println!(
            "measured {:<10} required={:<3} avoidable={}",
            name,
            report.required().len(),
            report.avoidable().len()
        );
        requirements.push(AppRequirement::from_report(&report));
    }

    // 2. Pick the OS under development — Kerla, the youngest layer in the
    //    curated database (58 syscalls). You can also parse your own
    //    support file with `OsSpec::from_csv`.
    let kerla = os::find("kerla").expect("curated spec");

    // 3. Generate and print the plan.
    let plan = SupportPlan::generate(&kerla, &requirements);
    println!("\n{}", plan.to_table());
    println!(
        "{} steps, {} syscalls implemented in total, {:.0}% of steps implement <=3 syscalls",
        plan.steps.len(),
        plan.total_implemented(),
        plan.small_step_fraction(3) * 100.0
    );
}
