//! Quantify engineering-effort savings (the Fig. 2 workflow): compare a
//! Loupe-optimised development order against an organic historical order
//! and naive trace-everything dynamic analysis.
//!
//! ```sh
//! cargo run --example effort_savings
//! ```

use loupe::apps::{registry, Workload};
use loupe::core::{AnalysisConfig, Engine};
use loupe::plan::savings::{loupe_curve, naive_curve, organic_curve};
use loupe::plan::AppRequirement;

fn main() {
    // Measure a 20-app slice of the dataset (health checks keep the
    // example fast; the fig2 experiment binary uses benchmarks over 62).
    let engine = Engine::new(AnalysisConfig::fast());
    let mut reqs = Vec::new();
    for app in registry::dataset().into_iter().take(20) {
        match engine.analyze(app.as_ref(), Workload::HealthCheck) {
            Ok(report) => reqs.push(AppRequirement::from_report(&report)),
            Err(e) => eprintln!("skipping {}: {e}", app.name()),
        }
    }
    let n = reqs.len();

    let loupe = loupe_curve(&reqs);
    let organic = organic_curve(&reqs); // registry order stands in for git history
    let naive = naive_curve(&reqs);

    println!("apps measured: {n}");
    println!(
        "{:<10} {:>14} {:>14}",
        "strategy", "half the apps", "all the apps"
    );
    for curve in [&loupe, &organic, &naive] {
        println!(
            "{:<10} {:>10} syscalls {:>10} syscalls",
            curve.strategy,
            curve.cost_to_support(n / 2).unwrap(),
            curve.cost_to_support(n).unwrap()
        );
    }

    let l = loupe.cost_to_support(n / 2).unwrap();
    let naive_cost = naive.cost_to_support(n / 2).unwrap();
    println!(
        "\nLoupe reaches half the apps with {:.0}% of the naive effort.",
        l as f64 * 100.0 / naive_cost as f64
    );
}
