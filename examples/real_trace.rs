//! The real `ptrace(2)` backend against a real binary: trace `/bin/echo`,
//! then stub a harmless syscall and show the program still works — the
//! paper's stub/fake mechanism on actual Linux.
//!
//! ```sh
//! cargo run --example real_trace
//! ```

use loupe::syscalls::Sysno;
use loupe::trace::{trace_command, TraceAction, TracePolicy};

fn main() {
    // Plain trace: which syscalls does `echo hello` make?
    let result = match trace_command(&["echo", "hello"], &TracePolicy::allow_all()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ptrace unavailable in this environment: {e}");
            return;
        }
    };
    println!(
        "echo exited {:?} after {} distinct syscalls:",
        result.exit_code,
        result.counts.len()
    );
    for (sysno, count) in result.by_sysno() {
        println!("  {:>4}x {}", count, sysno.name());
    }

    // Now stub brk: glibc falls back to mmap (§5.3) and echo still works.
    let policy = TracePolicy::allow_all().with(Sysno::brk, TraceAction::Stub);
    let stubbed = trace_command(&["echo", "hello"], &policy).expect("traced once already");
    println!(
        "\nwith brk stubbed (-ENOSYS): exit {:?}, {} calls intercepted — still works",
        stubbed.exit_code, stubbed.intercepted
    );
    assert_eq!(stubbed.exit_code, Some(0));

    // And fake write: echo believes it printed, produces nothing, exits 0.
    let policy = TracePolicy::allow_all().with(Sysno::write, TraceAction::Fake(4096));
    let faked = trace_command(&["echo", "hello"], &policy).expect("traced once already");
    println!(
        "with write faked (success, no work): exit {:?} — output silently lost",
        faked.exit_code
    );
}
