//! Quickstart: measure one application and read its classification.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use loupe::apps::{registry, Workload};
use loupe::core::{AnalysisConfig, Engine};

fn main() {
    // Pick an application model and a workload the test script drives.
    let app = registry::find("redis").expect("redis is in the registry");
    let engine = Engine::new(AnalysisConfig::fast());

    // One call runs the whole Loupe protocol: discovery run, one stub run
    // and one fake run per traced syscall, and a final confirmation run.
    let report = engine
        .analyze(app.as_ref(), Workload::Benchmark)
        .expect("redis passes redis-benchmark on the full kernel");

    println!(
        "redis under redis-benchmark: {} syscalls traced, {} analysis runs",
        report.traced().len(),
        report.stats.total_runs()
    );
    println!(
        "  required  : {:>2}  {}",
        report.required().len(),
        report.required()
    );
    println!(
        "  stubbable : {:>2}  (return -ENOSYS, no implementation needed)",
        report.stubbable().len()
    );
    println!(
        "  fakeable  : {:>2}  (return success, no implementation needed)",
        report.fakeable().len()
    );
    println!(
        "  => a compatibility layer needs {} of {} invoked syscalls to run this workload",
        report.required().len(),
        report.traced().len()
    );

    // The paper's headline: more than half of what a naive strace-based
    // approach reports does not need an implementation.
    assert!(report.required().len() * 2 <= report.traced().len() + 2);
}
