//! The shared-database workflow (§3.3: "Sharing Loupe Results"): measure
//! once, persist, then let anyone regenerate plans from stored results —
//! including conservative merging of repeated measurements.
//!
//! ```sh
//! cargo run --example database_workflow
//! ```

use loupe::apps::{registry, Workload};
use loupe::core::{AnalysisConfig, Engine};
use loupe::db::Database;
use loupe::plan::{os, SupportPlan};

fn main() {
    let dir = std::env::temp_dir().join("loupedb-example");
    std::fs::remove_dir_all(&dir).ok();
    let db = Database::open(&dir).expect("open database");

    // Contributor A measures three applications and uploads the results.
    let engine = Engine::new(AnalysisConfig::fast());
    for name in ["weborf", "webfsd", "lighttpd"] {
        let app = registry::find(name).unwrap();
        let report = engine
            .analyze(app.as_ref(), Workload::Benchmark)
            .expect("baseline passes");
        db.save(&report).expect("store");
        println!(
            "uploaded {name}: {} traced, {} required",
            report.traced().len(),
            report.required().len()
        );
    }

    // Contributor B re-measures one app (results merge conservatively).
    let app = registry::find("weborf").unwrap();
    let again = engine.analyze(app.as_ref(), Workload::Benchmark).unwrap();
    db.save(&again).expect("merge");
    let merged = db.load("weborf", Workload::Benchmark).unwrap().unwrap();
    println!(
        "weborf after second upload: counts doubled to {} total invocations",
        merged.traced.values().sum::<u64>()
    );

    // An OS developer pulls requirements straight from the database —
    // no re-measurement cost — and plans their next steps.
    let reqs = db.requirements(Workload::Benchmark).expect("load all");
    let kerla = os::find("kerla").unwrap();
    let plan = SupportPlan::generate(&kerla, &reqs);
    println!(
        "\nplan for kerla from shared measurements:\n{}",
        plan.to_table()
    );

    // The database also carries OS support specs in the paper's CSV form.
    let path = db.save_os_spec(&kerla).expect("export csv");
    println!("kerla support spec exported to {}", path.display());
    std::fs::remove_dir_all(&dir).ok();
}
