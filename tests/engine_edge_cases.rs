//! Engine edge cases and failure injection: hang detection, exhaustion
//! under leaking fakes, replica merging, and determinism.

use loupe::apps::{registry, AppCode, AppKind, AppModel, AppSpec, Env, Exit, Workload};
use loupe::core::{AnalysisConfig, Engine, EngineError};
use loupe::kernel::LinuxSim;
use loupe::syscalls::Sysno;

/// An app that spins on epoll without ever making progress unless its
/// single syscall works — used to check Hung classification.
struct Spinner;

impl AppModel for Spinner {
    fn name(&self) -> &str {
        "spinner"
    }
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "spinner".into(),
            version: "1".into(),
            year: 2024,
            port: None,
            kind: AppKind::Utility,
            libc: loupe::apps::libc::LibcFlavor::MuslStatic,
        }
    }
    fn provision(&self, sim: &mut LinuxSim) {
        loupe::apps::runtime::provision_base(sim);
    }
    fn run(&self, env: &mut Env<'_>, _w: Workload) -> Result<(), Exit> {
        // No libc init: the most minimal possible program.
        let r = env.sys(Sysno::getrandom, [0, 8, 0, 0, 0, 0]);
        if r.payload.as_bytes().is_none() {
            return Err(Exit::Hung("waiting for entropy that never comes".into()));
        }
        env.record_response();
        Ok(())
    }
    fn code(&self) -> AppCode {
        AppCode::new().with_checked(&[Sysno::getrandom])
    }
}

#[test]
fn hangs_disqualify_stub_and_fake() {
    let engine = Engine::new(AnalysisConfig::fast());
    let report = engine.analyze(&Spinner, Workload::HealthCheck).unwrap();
    let class = report.classes[&Sysno::getrandom];
    assert!(class.is_required(), "{class:?}");
}

/// An app whose baseline is flaky only for some workloads.
struct SuiteOnly;

impl AppModel for SuiteOnly {
    fn name(&self) -> &str {
        "suite-only"
    }
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "suite-only".into(),
            version: "1".into(),
            year: 2024,
            port: None,
            kind: AppKind::Utility,
            libc: loupe::apps::libc::LibcFlavor::MuslStatic,
        }
    }
    fn run(&self, env: &mut Env<'_>, w: Workload) -> Result<(), Exit> {
        if w == Workload::TestSuite {
            return Err(Exit::Crash("suite harness missing".into()));
        }
        for _ in 0..w.requests() {
            let _ = env.sys0(Sysno::getpid);
            env.record_response();
        }
        Ok(())
    }
    fn code(&self) -> AppCode {
        AppCode::new()
    }
}

#[test]
fn per_workload_baselines_are_independent() {
    let engine = Engine::new(AnalysisConfig::fast());
    assert!(engine.analyze(&SuiteOnly, Workload::Benchmark).is_ok());
    let err = engine.analyze(&SuiteOnly, Workload::TestSuite).unwrap_err();
    let EngineError::BaselineFailed { app, reasons } = err;
    assert_eq!(app, "suite-only");
    assert!(reasons.iter().any(|r| r.contains("suite harness")));
}

#[test]
fn analysis_is_deterministic_end_to_end() {
    // Two full analyses of the same app produce identical reports — the
    // property that makes the shared database meaningful (§3.3).
    let engine = Engine::new(AnalysisConfig::fast());
    let app = registry::find("memcached").unwrap();
    let a = engine.analyze(app.as_ref(), Workload::Benchmark).unwrap();
    let b = engine.analyze(app.as_ref(), Workload::Benchmark).unwrap();
    assert_eq!(a, b);
}

#[test]
fn replicas_merge_conservatively_with_identical_runs() {
    // With a deterministic simulator, replicas agree — merging must not
    // change conclusions, only multiply run counts.
    let app = registry::find("weborf").unwrap();
    let r1 = Engine::new(AnalysisConfig {
        replicas: 1,
        ..AnalysisConfig::fast()
    })
    .analyze(app.as_ref(), Workload::HealthCheck)
    .unwrap();
    let r3 = Engine::new(AnalysisConfig {
        replicas: 3,
        ..AnalysisConfig::fast()
    })
    .analyze(app.as_ref(), Workload::HealthCheck)
    .unwrap();
    assert_eq!(r1.classes, r3.classes);
    assert_eq!(r3.stats.total_runs(), 3 * r1.stats.total_runs());
}

#[test]
fn conflict_bisection_finds_the_webfsd_interaction() {
    // webfsd answers with a writev header + sendfile body: each is
    // individually fakeable (the other still delivers bytes), but faking
    // both starves the client. The engine's automatic bisection must
    // detect the interaction and re-mark one of the pair as required.
    let engine = Engine::new(AnalysisConfig::fast());
    let app = registry::find("webfsd").unwrap();
    let report = engine.analyze(app.as_ref(), Workload::HealthCheck).unwrap();
    assert!(report.confirmed, "bisection must restore confirmation");
    assert!(
        report
            .conflicts
            .iter()
            .any(|s| *s == Sysno::writev || *s == Sysno::sendfile),
        "conflict set: {:?}",
        report.conflicts
    );
    assert!(report.stats.bisect_runs > 0);

    // Without bisection, the same analysis reports the unresolved state.
    let manual = Engine::new(AnalysisConfig {
        auto_bisect_conflicts: false,
        ..AnalysisConfig::fast()
    })
    .analyze(app.as_ref(), Workload::HealthCheck)
    .unwrap();
    assert!(!manual.confirmed);
    assert!(manual.conflicts.is_empty());
}

#[test]
fn whole_dataset_health_check_analyses_succeed() {
    // Every one of the 116 dataset applications is analysable end to end
    // (the scale requirement of §3: "letting us present results for 100+
    // applications").
    let engine = Engine::new(AnalysisConfig::fast());
    let mut analysed = 0;
    for app in registry::dataset() {
        let report = engine
            .analyze(app.as_ref(), Workload::HealthCheck)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        assert!(report.required().len() >= 3, "{}", app.name());
        assert!(report.confirmed, "{}: confirmation failed", app.name());
        analysed += 1;
    }
    assert_eq!(analysed, 116);
}
