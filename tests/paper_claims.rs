//! Smoke tests pinning the paper's headline claims, as reproduced by this
//! codebase. These are the assertions EXPERIMENTS.md reports; failures
//! here mean an experiment's *shape* regressed.

use loupe::apps::{registry, Workload};
use loupe::core::{AnalysisConfig, Engine};
use loupe::plan::savings::{loupe_curve, naive_curve, organic_curve};
use loupe::plan::{os, AppRequirement, SupportPlan};

fn requirements(names: &[&str], workload: Workload) -> Vec<AppRequirement> {
    let engine = Engine::new(AnalysisConfig::fast());
    names
        .iter()
        .map(|n| {
            let app = registry::find(n).expect(n);
            AppRequirement::from_report(&engine.analyze(app.as_ref(), workload).unwrap())
        })
        .collect()
}

#[test]
fn headline_half_of_invoked_syscalls_are_avoidable() {
    // §1: "more than half of the system calls invoked by Redis running
    // the redis-benchmark can be stubbed or faked".
    let engine = Engine::new(AnalysisConfig::fast());
    let app = registry::find("redis").unwrap();
    let report = engine.analyze(app.as_ref(), Workload::Benchmark).unwrap();
    assert!(report.avoidable().len() * 2 >= report.traced().len());
}

#[test]
fn plans_scale_inversely_with_os_maturity() {
    // Table 1: Unikraft needs few steps, Kerla needs many, for the same
    // target applications.
    let reqs = requirements(
        &[
            "nginx",
            "redis",
            "memcached",
            "sqlite",
            "lighttpd",
            "weborf",
            "webfsd",
            "h2o",
        ],
        Workload::Benchmark,
    );
    let unikraft = SupportPlan::generate(&os::find("unikraft").unwrap(), &reqs);
    let kerla = SupportPlan::generate(&os::find("kerla").unwrap(), &reqs);
    assert!(
        unikraft.steps.len() < kerla.steps.len(),
        "unikraft {} !< kerla {}",
        unikraft.steps.len(),
        kerla.steps.len()
    );
    assert!(unikraft.initially_supported.len() > kerla.initially_supported.len());
    // ">80% of steps require implementing 1-3 system calls".
    assert!(kerla.small_step_fraction(3) > 0.8);
}

#[test]
fn loupe_beats_organic_beats_naive() {
    // Fig. 2 ordering, on a 16-app slice.
    let names: Vec<&str> = vec![
        "nginx",
        "redis",
        "memcached",
        "sqlite",
        "haproxy",
        "lighttpd",
        "weborf",
        "webfsd",
        "h2o",
        "httpd",
        "mongodb",
        "iperf3",
        "postgres",
        "etcd",
        "varnish",
        "dnsmasq",
    ];
    let reqs = requirements(&names, Workload::HealthCheck);
    let half = reqs.len() / 2;
    let loupe = loupe_curve(&reqs).cost_to_support(half).unwrap();
    let organic = organic_curve(&reqs).cost_to_support(half).unwrap();
    let naive = naive_curve(&reqs).cost_to_support(half).unwrap();
    assert!(loupe <= organic, "{loupe} !<= {organic}");
    assert!(organic < naive, "{organic} !< {naive}");
    // The paper's strongest ratio claim: naive dynamic analysis costs
    // several times the Loupe plan.
    assert!(naive as f64 / loupe as f64 > 2.0);
}

#[test]
fn libc_floor_matches_table4_exactly() {
    use loupe::core::{Interposed, Policy};
    use loupe::kernel::LinuxSim;
    let expect = [
        ("hello-glibc-dynamic", 13usize, 28u64),
        ("hello-glibc-static", 8, 11),
        ("hello-musl-dynamic", 9, 11),
        ("hello-musl-static", 6, 6),
    ];
    for (name, distinct, invocations) in expect {
        let app = registry::find(name).unwrap();
        let mut sim = LinuxSim::new();
        app.provision(&mut sim);
        let mut kernel = Interposed::new(sim, Policy::allow_all());
        {
            let mut env = loupe::apps::Env::new(&mut kernel);
            app.run(&mut env, Workload::HealthCheck).unwrap();
            let _ = env.finish(loupe::apps::Exit::Clean);
        }
        let (_, trace) = kernel.into_parts();
        assert_eq!(trace.syscalls.len(), distinct, "{name} distinct");
        assert_eq!(trace.total_invocations(), invocations, "{name} invocations");
    }
}

#[test]
fn syscall_usage_is_stable_across_releases() {
    // Fig. 8: old and new releases differ by only a handful of syscalls.
    let engine = Engine::new(AnalysisConfig::fast());
    for (old, new) in [
        ("nginx-0.3.19", "nginx"),
        ("redis-2.0", "redis"),
        ("httpd-2.2", "httpd"),
    ] {
        let o = engine
            .analyze(registry::find(old).unwrap().as_ref(), Workload::Benchmark)
            .unwrap();
        let n = engine
            .analyze(registry::find(new).unwrap().as_ref(), Workload::Benchmark)
            .unwrap();
        let delta = (o.traced().len() as i64 - n.traced().len() as i64).abs();
        assert!(delta <= 8, "{old}->{new}: traced delta {delta}");
        let req_delta = (o.required().len() as i64 - n.required().len() as i64).abs();
        assert!(req_delta <= 3, "{old}->{new}: required delta {req_delta}");
    }
}

#[test]
fn table2_signature_effects_hold() {
    use loupe::syscalls::Sysno;
    let engine = Engine::new(AnalysisConfig::fast());

    // Nginx: write stub speeds it up; rt_sigsuspend stub slows it down.
    let nginx = engine
        .analyze(
            registry::find("nginx").unwrap().as_ref(),
            Workload::Benchmark,
        )
        .unwrap();
    let write = nginx.impacts[&Sysno::write].stub.unwrap();
    assert!(write.success && write.perf_delta > 0.05, "{:?}", write);
    let susp = nginx.impacts[&Sysno::rt_sigsuspend].stub.unwrap();
    assert!(susp.success && susp.perf_delta < -0.2, "{:?}", susp);
    let clone = nginx.impacts[&Sysno::clone].fake.unwrap();
    assert!(clone.success && clone.rss_delta > 0.03, "{:?}", clone);

    // iPerf3: brk stub costs memory, nothing else moves much.
    let iperf = engine
        .analyze(
            registry::find("iperf3").unwrap().as_ref(),
            Workload::Benchmark,
        )
        .unwrap();
    let brk = iperf.impacts[&Sysno::brk].stub.unwrap();
    assert!(brk.success && brk.rss_delta > 0.03, "{:?}", brk);
}

#[test]
fn static_analysis_overestimates_by_the_papers_factors() {
    // §1: "only as few as 20% of system calls reported by static analysis,
    // and 50% of those reported by naive dynamic analysis need an
    // implementation".
    use loupe::statics::{BinaryAnalyzer, StaticAnalyzer};
    let engine = Engine::new(AnalysisConfig::fast());
    for name in ["redis", "nginx", "memcached"] {
        let app = registry::find(name).unwrap();
        let report = engine.analyze(app.as_ref(), Workload::Benchmark).unwrap();
        let binary = BinaryAnalyzer::new().analyze(app.as_ref()).syscalls.len();
        let traced = report.traced().len();
        let required = report.required().len();
        assert!(
            (required as f64) < binary as f64 * 0.2,
            "{name}: required {required} !< 20% of static {binary}"
        );
        assert!(
            (required as f64) <= traced as f64 * 0.5,
            "{name}: required {required} !<= 50% of traced {traced}"
        );
    }
}
