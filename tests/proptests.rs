//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use loupe::core::{Action, Policy};
use loupe::db::merge_reports;
use loupe::kernel::{Invocation, Kernel, LinuxSim};
use loupe::plan::{AppRequirement, OsSpec, SupportPlan};
use loupe::syscalls::{Errno, Sysno, SysnoSet};

fn arb_sysno() -> impl Strategy<Value = Sysno> {
    let all: Vec<Sysno> = Sysno::all().collect();
    (0..all.len()).prop_map(move |i| all[i])
}

fn arb_sysno_set(max: usize) -> impl Strategy<Value = SysnoSet> {
    proptest::collection::vec(arb_sysno(), 0..max).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #[test]
    fn sysno_roundtrips(s in arb_sysno()) {
        prop_assert_eq!(Sysno::from_raw(s.raw()), Some(s));
        prop_assert_eq!(Sysno::from_name(s.name()), Some(s));
        prop_assert_eq!(s.name().parse::<Sysno>().unwrap(), s);
        prop_assert_eq!(s.raw().to_string().parse::<Sysno>().unwrap(), s);
    }

    #[test]
    fn set_algebra_laws(a in arb_sysno_set(40), b in arb_sysno_set(40)) {
        let union = a.union(&b);
        let inter = a.intersection(&b);
        let diff = a.difference(&b);
        // Union contains both; intersection is within both.
        prop_assert!(a.is_subset(&union));
        prop_assert!(b.is_subset(&union));
        prop_assert!(inter.is_subset(&a));
        prop_assert!(inter.is_subset(&b));
        // |A| = |A∩B| + |A\B|.
        prop_assert_eq!(a.len(), inter.len() + diff.len());
        // Union is commutative, difference is disjoint from B.
        prop_assert_eq!(union.clone(), b.union(&a));
        prop_assert!(diff.intersection(&b).is_empty());
    }

    #[test]
    fn errno_roundtrips(idx in 0..Errno::ALL.len()) {
        let e = Errno::ALL[idx];
        prop_assert_eq!(Errno::from_ret(e.to_ret()), Some(e));
        prop_assert!(e.to_ret() < 0);
    }

    #[test]
    fn policy_single_rule_is_isolated(target in arb_sysno(), other in arb_sysno()) {
        prop_assume!(target != other);
        let policy = Policy::allow_all().with_syscall(target, Action::Stub);
        let hit = Invocation::new(target, [0; 6]);
        let miss = Invocation::new(other, [0; 6]);
        prop_assert_eq!(policy.action_for(&hit), Action::Stub);
        prop_assert_eq!(policy.action_for(&miss), Action::Allow);
    }

    #[test]
    fn stubbed_syscalls_always_return_enosys(s in arb_sysno(), args in proptest::array::uniform6(0u64..1024)) {
        use loupe::core::Interposed;
        let policy = Policy::allow_all().with_syscall(s, Action::Stub);
        let mut k = Interposed::new(LinuxSim::new(), policy);
        let out = k.syscall(&Invocation::new(s, args));
        prop_assert_eq!(out.errno(), Some(Errno::ENOSYS));
    }

    #[test]
    fn faked_syscalls_never_fail(s in arb_sysno(), args in proptest::array::uniform6(0u64..1024)) {
        use loupe::core::Interposed;
        let policy = Policy::allow_all().with_syscall(s, Action::Fake);
        let mut k = Interposed::new(LinuxSim::new(), policy);
        let out = k.syscall(&Invocation::new(s, args));
        prop_assert!(out.ret >= 0, "{}: {}", s, out.ret);
    }

    #[test]
    fn kernel_never_panics_on_arbitrary_invocations(
        s in arb_sysno(),
        args in proptest::array::uniform6(0u64..u64::MAX),
    ) {
        let mut k = LinuxSim::new();
        let _ = k.syscall(&Invocation::new(s, args));
        // Accounting invariants hold regardless of input garbage.
        let u = k.usage();
        prop_assert!(u.cur_fds <= u.peak_fds + 3); // stdio pre-opened
        prop_assert!(u.cur_rss <= u.peak_rss);
    }

    #[test]
    fn fd_accounting_is_balanced_under_random_open_close(ops in proptest::collection::vec(0u8..3, 1..60)) {
        let mut k = LinuxSim::new();
        k.vfs.add_file("/f", vec![0; 16]);
        let mut opened: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                0 => {
                    let r = k.syscall(&Invocation::new(Sysno::openat, [0; 6]).with_path("/f"));
                    if r.ret >= 0 {
                        opened.push(r.ret as u64);
                    }
                }
                1 => {
                    if let Some(fd) = opened.pop() {
                        let r = k.syscall(&Invocation::new(Sysno::close, [fd, 0, 0, 0, 0, 0]));
                        prop_assert_eq!(r.ret, 0);
                    }
                }
                _ => {
                    let _ = k.syscall(&Invocation::new(Sysno::getpid, [0; 6]));
                }
            }
            prop_assert_eq!(u64::from(k.usage().cur_fds), opened.len() as u64);
        }
    }

    #[test]
    fn plan_invariants(seed_sets in proptest::collection::vec(arb_sysno_set(12), 1..8)) {
        let apps: Vec<AppRequirement> = seed_sets
            .into_iter()
            .enumerate()
            .map(|(i, required)| AppRequirement {
                app: format!("app{i}"),
                traced: required.clone(),
                required,
                stubbable: SysnoSet::new(),
                fake_only: SysnoSet::new(),
                ..AppRequirement::default()
            })
            .collect();
        let os = OsSpec::new("empty", "0", SysnoSet::new());
        let plan = SupportPlan::generate(&os, &apps);
        // Every app appears exactly once.
        prop_assert_eq!(plan.steps.len() + plan.initially_supported.len(), apps.len());
        // Total implemented equals the union of all required sets.
        let mut union = SysnoSet::new();
        for a in &apps {
            union = union.union(&a.required);
        }
        prop_assert_eq!(plan.total_implemented(), union.len());
        // Steps are monotone: the same syscall is never implemented twice.
        let mut seen = SysnoSet::new();
        for step in &plan.steps {
            for s in step.implement.iter() {
                prop_assert!(seen.insert(s), "{} implemented twice", s);
            }
        }
        // Greedy is non-increasing in marginal cost only relative to the
        // remaining set, but the first step is always globally cheapest.
        if let Some(first) = plan.steps.first() {
            let min_cost = apps.iter().map(|a| a.required.len()).min().unwrap();
            prop_assert!(first.implement.len() <= apps.iter().map(|a| a.required.len()).max().unwrap());
            let _ = min_cost;
        }
    }

    #[test]
    fn merge_is_commutative_and_conservative(
        stub_a in proptest::bool::ANY,
        fake_a in proptest::bool::ANY,
        stub_b in proptest::bool::ANY,
        fake_b in proptest::bool::ANY,
    ) {
        use loupe::core::FeatureClass;
        use std::collections::BTreeMap;
        let mk = |stub_ok, fake_ok| {
            let mut classes = BTreeMap::new();
            classes.insert(Sysno::read, FeatureClass { stub_ok, fake_ok });
            loupe::core::AppReport {
                app: "x".into(),
                version: "1".into(),
                workload: loupe::apps::Workload::Benchmark,
                env: "linux".into(),
                traced: [(Sysno::read, 1)].into_iter().collect(),
                classes,
                fallbacks: Default::default(),
                rejections: BTreeMap::new(),
                fake_hits: BTreeMap::new(),
                first_rejection: None,
                impacts: BTreeMap::new(),
                sub_features: vec![],
                pseudo_files: BTreeMap::new(),
                conflicts: vec![],
                confirmed: true,
                baseline: Default::default(),
                stats: Default::default(),
            }
        };
        let a = mk(stub_a, fake_a);
        let b = mk(stub_b, fake_b);
        let ab = merge_reports(&a, &b);
        let ba = merge_reports(&b, &a);
        prop_assert_eq!(ab.classes[&Sysno::read], ba.classes[&Sysno::read]);
        // Conservative: merged capability implies both inputs had it.
        prop_assert_eq!(ab.classes[&Sysno::read].stub_ok, stub_a && stub_b);
        prop_assert_eq!(ab.classes[&Sysno::read].fake_ok, fake_a && fake_b);
        // Idempotent on classes.
        let aa = merge_reports(&a, &a);
        prop_assert_eq!(aa.classes[&Sysno::read], a.classes[&Sysno::read]);
    }

    #[test]
    fn os_spec_csv_roundtrips(set in arb_sysno_set(60)) {
        let spec = OsSpec::new("prop", "1", set);
        let csv = spec.to_csv();
        let back = OsSpec::from_csv("prop", "1", &csv).unwrap();
        prop_assert_eq!(spec.supported, back.supported);
    }
}
