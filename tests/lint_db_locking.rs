//! Source-scan lint: every read-modify-write save in `loupe-db` must go
//! through the cross-process writer lock.
//!
//! The database serializes concurrent writers (multiple `loupe sweep`
//! processes, `loupe serve` shards) with an advisory file lock taken by
//! `Shared::lock_writers`. A save path that calls `write_json` without
//! first taking the lock can interleave with another writer and lose
//! updates — a bug class that is trivial to introduce when adding a new
//! artifact kind and invisible to unit tests run in a single process.
//! This test walks the crate's source and rejects any function that
//! writes JSON without locking.

use std::fs;
use std::path::Path;

/// A function extracted from a source file: its name and body text.
struct FnBody {
    file: String,
    name: String,
    body: String,
}

/// Extracts every `fn` item (free function or method) with its body.
///
/// This is a token-level scan, not a full parse: it finds `fn <ident>`,
/// skips ahead to the body's opening brace, and walks to the matching
/// close brace while ignoring braces inside strings, chars and
/// comments. Nested functions are folded into their parent's body,
/// which is the conservative direction for this lint.
fn extract_fns(file: &str, src: &str) -> Vec<FnBody> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(rel) = src[i..].find("fn ") {
        let at = i + rel;
        // Require a token boundary before `fn` so `often ` etc. don't match.
        let boundary = at == 0 || !bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_';
        if !boundary {
            i = at + 3;
            continue;
        }
        let name: String = src[at + 3..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            i = at + 3;
            continue;
        }
        // Find the body's opening brace; a `;` first means a trait
        // method signature or extern declaration with no body.
        let mut j = at + 3 + name.len();
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let Some(open) = open else {
            i = at + 3;
            continue;
        };
        let end = match matching_brace(src, open) {
            Some(end) => end,
            None => src.len(),
        };
        out.push(FnBody {
            file: file.to_owned(),
            name,
            body: src[open..end].to_owned(),
        });
        // Continue *inside* the body so nested fns are also listed on
        // their own (harmless duplicates; the parent copy is what the
        // lint conservatively checks).
        i = open + 1;
    }
    out
}

/// Index of the brace matching `src[open]`, skipping strings, chars,
/// line comments and block comments.
fn matching_brace(src: &str, open: usize) -> Option<usize> {
    let bytes = src.as_bytes();
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            b'"' => {
                // String literal (raw strings handled loosely: the scan
                // only needs to not miscount braces in practice).
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
            }
            // Char literal (not a lifetime); only skip if it closes soon.
            b'\'' if i + 2 < bytes.len() && (bytes[i + 2] == b'\'' || bytes[i + 1] == b'\\') => {
                i += 2;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    i += 1;
                }
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[test]
fn every_db_save_path_takes_the_writer_lock() {
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/db/src");
    let mut fns = Vec::new();
    for entry in fs::read_dir(&src_dir).expect("crates/db/src must exist") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let file = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = fs::read_to_string(&path).expect("readable source file");
        fns.extend(extract_fns(&file, &src));
    }

    // Functions named `*_locked` are internal helpers whose contract is
    // "caller already holds the writer lock" — they may call write_json
    // bare, but everyone who calls *them* must lock.
    let locked_helpers: Vec<String> = fns
        .iter()
        .filter(|f| f.name.ends_with("_locked"))
        .map(|f| format!("{}(", f.name))
        .collect();

    let mut checked = 0usize;
    let mut violations = Vec::new();
    for f in &fns {
        // The serializer itself is the one function allowed to call
        // write_json without locking: its callers hold the lock.
        if f.name == "write_json" || f.name.ends_with("_locked") {
            continue;
        }
        let writes_directly = f.body.contains("write_json(");
        let writes_via_helper = locked_helpers.iter().any(|h| f.body.contains(h.as_str()));
        if writes_directly || writes_via_helper {
            checked += 1;
            if !f.body.contains("lock_writers()") {
                violations.push(format!("{}::{}", f.file, f.name));
            }
        }
    }

    assert!(
        checked >= 4,
        "expected to find several write paths in loupe-db, found {checked} — \
         did the scan or the crate layout change?"
    );
    assert!(
        violations.is_empty(),
        "these loupe-db functions call write_json without taking the \
         cross-process writer lock (lock_writers): {violations:?}"
    );
}

#[test]
fn the_scanner_sees_through_strings_and_comments() {
    let src = r#"
        fn locked_save() {
            let _g = self.shared.lock_writers()?;
            write_json(&path, &value)?;
        }
        fn sneaky_save() {
            // lock_writers() — only mentioned in a comment
            let s = "{"; // unbalanced brace inside a string
            write_json(&path, &value)?;
        }
    "#;
    let fns = extract_fns("test.rs", src);
    let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["locked_save", "sneaky_save"]);
    assert!(fns[0].body.contains("lock_writers()"));
    // The comment mention still counts textually — the real lint relies
    // on the repo not gaming itself; what matters here is that the
    // unbalanced brace in the string didn't merge the two functions.
    assert!(fns[1].body.contains("write_json("));
    assert!(!fns[1].body.contains("let _g"));
}
