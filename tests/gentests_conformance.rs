//! The gentests keystone meta-test: for every OS × workload × app cell,
//! executing the generated conformance suite on that OS's kernel
//! profiles must reproduce the empirical matrix verdict exactly — on
//! both remediation tiers. A disagreement would mean the suite
//! generator, the matrix sweep and the planner no longer tell the same
//! story about the same corpus.
//!
//! Plus the golden determinism check: the persisted suite files and the
//! rendered `CONFORMANCE.md` are byte-identical regardless of how many
//! workers generated them.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use loupe::apps::{registry, Workload};
use loupe::db::Database;
use loupe::plan::{os, Tier};
use loupe::sweep::{report, sweep_gentests, GentestsConfig, MatrixConfig, SweepConfig};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("loupe-gtmeta-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn cfg(workloads: Vec<Workload>, oses: Vec<loupe::plan::OsSpec>, workers: usize) -> GentestsConfig {
    GentestsConfig {
        matrix: MatrixConfig {
            oses,
            tier: None,
            sweep: SweepConfig {
                workloads,
                workers,
                ..SweepConfig::default()
            },
        },
        check: false,
    }
}

/// The acceptance criterion: all 11 curated OS profiles × all 3
/// workloads × the full 116-app fleet, and the executed suite verdict
/// equals the measured matrix verdict on the vanilla *and* planned tier
/// of every single cell — zero disagreements.
#[test]
fn generated_suites_reproduce_matrix_verdicts_fleet_wide() {
    let dir = tmpdir("fleet");
    let db = Database::open(&dir).unwrap();
    let summary = sweep_gentests(
        &db,
        registry::dataset(),
        &cfg(Workload::ALL.to_vec(), os::db(), 0),
    )
    .unwrap();

    assert_eq!(
        summary.disagreements,
        Vec::new(),
        "every generated suite agrees with its matrix cell"
    );
    assert!(summary.stale.is_empty());
    assert_eq!(
        summary.stats.len(),
        os::db().len() * Workload::ALL.len(),
        "one slice per OS x workload"
    );
    for row in &summary.stats {
        assert_eq!(row.suites, registry::dataset().len());
        assert!(row.vanilla_pass <= row.planned_pass, "{row:?}");
    }

    // Independent cross-check, not trusting the sweep's own comparison:
    // re-load every stored suite and matrix cell, re-execute the suite
    // on both tiers, and compare verdicts. Along the way, tally the
    // flag-granular machinery: suites carrying per-flag cases, and
    // failures whose first cause is a specific flag rather than a
    // whole syscall.
    let mut cells_checked = 0;
    let mut suites_with_flag_cases = 0;
    let mut flag_precise_failures = 0;
    for (os_name, app, workload) in db.list_suites().unwrap() {
        let suite = db.load_suite(&os_name, &app, workload).unwrap().unwrap();
        let cell = db
            .load_matrix_cell(&os_name, &app, workload)
            .unwrap()
            .expect("every suite has a matrix cell");
        let spec = os::find(&os_name).unwrap();
        for tier in Tier::ALL {
            assert_eq!(
                suite.verdict(&spec, tier),
                cell.passes(tier),
                "suite vs matrix: {os_name} x {app} ({workload}, {} tier)",
                tier.label()
            );
        }
        if suite.cases.iter().any(|c| c.sub_feature.is_some()) {
            suites_with_flag_cases += 1;
        }
        // A vanilla failure on a hole-carrying OS whose suite trips a
        // flag case must name the flag (`fcntl:F_SETLK`), matching the
        // matrix cell's own flag-precise first cause.
        if !suite.verdict(&spec, Tier::Vanilla) && !spec.all_holes().is_empty() {
            let run = suite.run_on_profile(&loupe::plan::vanilla_profile(&spec));
            if let Some(cause) = run.first_failure_cause() {
                if cause.contains(':') {
                    flag_precise_failures += 1;
                    let cell_cause = cell
                        .vanilla
                        .as_ref()
                        .and_then(|t| t.first_cause())
                        .expect("failing vanilla tier names a cause");
                    assert!(
                        cell_cause.contains(':'),
                        "{os_name} x {app}: suite tripped {cause} but the                          matrix cell blames {cell_cause}"
                    );
                }
            }
        }
        cells_checked += 1;
    }
    assert_eq!(
        cells_checked,
        os::db().len() * Workload::ALL.len() * registry::dataset().len(),
        "the cross-check covered the whole matrix"
    );
    assert!(
        suites_with_flag_cases > 0,
        "the fleet exercises per-flag conformance cases"
    );
    assert!(
        flag_precise_failures > 0,
        "at least one vanilla failure is attributed to a specific flag"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Collects `gentests/` namespace files as relative path → raw bytes.
fn suite_files(root: &Path) -> BTreeMap<PathBuf, Vec<u8>> {
    fn walk(dir: &Path, base: &Path, out: &mut BTreeMap<PathBuf, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(&path, base, out);
            } else {
                out.insert(
                    path.strip_prefix(base).unwrap().to_owned(),
                    std::fs::read(&path).unwrap(),
                );
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(&root.join("gentests"), root, &mut out);
    out
}

/// Golden determinism: the same fleet generated with 1 worker and with
/// 4 workers yields byte-identical suite files and a byte-identical
/// rendered `CONFORMANCE.md`.
#[test]
fn suite_output_is_byte_identical_across_worker_counts() {
    let oses = vec![os::find("kerla").unwrap(), os::find("fuchsia").unwrap()];
    let apps = || -> Vec<_> { registry::detailed().into_iter().take(6).collect() };

    let dir_serial = tmpdir("golden-serial");
    let db_serial = Database::open(&dir_serial).unwrap();
    let one = sweep_gentests(
        &db_serial,
        apps(),
        &cfg(vec![Workload::HealthCheck], oses.clone(), 1),
    )
    .unwrap();

    let dir_parallel = tmpdir("golden-parallel");
    let db_parallel = Database::open(&dir_parallel).unwrap();
    let four = sweep_gentests(
        &db_parallel,
        apps(),
        &cfg(vec![Workload::HealthCheck], oses, 4),
    )
    .unwrap();

    assert_eq!(one.generated, 2 * 6);
    assert_eq!(one.generated, four.generated);
    assert_eq!(one.stats, four.stats);

    let files_serial = suite_files(&dir_serial);
    let files_parallel = suite_files(&dir_parallel);
    assert_eq!(files_serial.len(), 12);
    assert_eq!(
        files_serial, files_parallel,
        "persisted suites are byte-identical across worker counts"
    );

    let doc = |db: &Database| {
        report::render(db)
            .unwrap()
            .files
            .into_iter()
            .find(|(p, _)| p == Path::new("CONFORMANCE.md"))
            .expect("CONFORMANCE.md rendered when suites exist")
            .1
    };
    assert_eq!(doc(&db_serial), doc(&db_parallel));
    std::fs::remove_dir_all(&dir_serial).ok();
    std::fs::remove_dir_all(&dir_parallel).ok();
}
