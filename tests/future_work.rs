//! Tests for the §6 future-work features implemented beyond the paper's
//! core protocol: silent-fault detection via log anomalies, knowledge
//! transfer across applications, and the test-suite whitelist (§3.3).

use std::collections::BTreeMap;

use loupe::apps::{registry, Workload};
use loupe::core::{transfer_hints, AnalysisConfig, Engine};
use loupe::syscalls::Sysno;

#[test]
fn log_anomaly_detection_catches_silent_persistence_loss() {
    // Stubbing pipe2 passes the Redis *benchmark* (persistence is not on
    // the hot path) — but Redis logs "# Can't create pipe: persistence
    // disabled". The baseline never logs that line, so the anomaly
    // detector flags the stub where the plain test script does not.
    let app = registry::find("redis").unwrap();

    let plain = Engine::new(AnalysisConfig::fast())
        .analyze(app.as_ref(), Workload::Benchmark)
        .unwrap();
    assert!(
        plain.classes[&Sysno::pipe2].stub_ok,
        "the paper's protocol accepts the stub"
    );

    let vigilant = Engine::new(AnalysisConfig {
        detect_log_anomalies: true,
        ..AnalysisConfig::fast()
    })
    .analyze(app.as_ref(), Workload::Benchmark)
    .unwrap();
    assert!(
        !vigilant.classes[&Sysno::pipe2].stub_ok,
        "anomaly detection catches the silent feature loss"
    );
    // Anomaly detection can only be stricter, never looser.
    assert!(vigilant.required().len() >= plain.required().len());
    for s in plain.required().iter() {
        assert!(vigilant.required().contains(s), "{s} lost by anomaly mode");
    }
}

#[test]
fn transfer_hints_skip_runs_without_changing_conclusions() {
    let engine = Engine::new(AnalysisConfig::fast());

    // Learn from three web servers...
    let mut teachers = Vec::new();
    for name in ["nginx", "lighttpd", "weborf"] {
        let app = registry::find(name).unwrap();
        teachers.push(engine.analyze(app.as_ref(), Workload::Benchmark).unwrap());
    }
    let hints = transfer_hints(&teachers, 3);
    assert!(
        !hints.is_empty(),
        "unanimous classifications exist across web servers"
    );
    // Fundamental syscalls transfer as required.
    assert!(hints[&Sysno::mmap].is_required());

    // ...then analyse a fourth app with and without the hints.
    let app = registry::find("h2o").unwrap();
    let cold = engine.analyze(app.as_ref(), Workload::Benchmark).unwrap();
    let warm = engine
        .analyze_with_hints(app.as_ref(), Workload::Benchmark, &hints)
        .unwrap();

    assert!(warm.stats.transfer_skips > 0, "some runs were saved");
    assert!(
        warm.stats.total_runs() < cold.stats.total_runs(),
        "{} !< {}",
        warm.stats.total_runs(),
        cold.stats.total_runs()
    );
    // The transferred conclusions hold: same required set, and the
    // confirmation run validated the combined policy.
    assert_eq!(warm.required(), cold.required());
    assert!(warm.confirmed);
}

#[test]
fn transfer_hint_edge_cases() {
    use loupe::core::FeatureClass;

    // No teachers → no hints, regardless of the agreement floor.
    assert!(transfer_hints(&[], 0).is_empty());
    assert!(transfer_hints(&[], 3).is_empty());

    let engine = Engine::new(AnalysisConfig::fast());
    let nginx = engine
        .analyze(
            registry::find("nginx").unwrap().as_ref(),
            Workload::Benchmark,
        )
        .unwrap();
    let weborf = engine
        .analyze(
            registry::find("weborf").unwrap().as_ref(),
            Workload::Benchmark,
        )
        .unwrap();

    // min_agreement = 0 behaves like 1: every unanimously classified
    // syscall of a single teacher transfers.
    let zero = transfer_hints(std::slice::from_ref(&nginx), 0);
    let one = transfer_hints(std::slice::from_ref(&nginx), 1);
    assert_eq!(zero, one);
    assert_eq!(zero.len(), nginx.classes.len());

    // A floor higher than the teacher count yields nothing.
    assert!(transfer_hints(std::slice::from_ref(&nginx), 2).is_empty());

    // Disagreeing teachers exclude the syscall: poison weborf's copy of
    // a class nginx reported, flipping it.
    let mut poisoned = weborf.clone();
    let (&sysno, &class) = nginx
        .classes
        .iter()
        .find(|(s, _)| weborf.classes.contains_key(*s))
        .expect("web servers share syscalls");
    poisoned.classes.insert(
        sysno,
        FeatureClass {
            stub_ok: !class.stub_ok,
            fake_ok: class.fake_ok,
        },
    );
    let hints = transfer_hints(&[nginx.clone(), poisoned], 1);
    assert!(
        !hints.contains_key(&sysno),
        "disagreement on {sysno} must block the transfer"
    );
    // Agreement on everything else still transfers.
    assert!(!hints.is_empty());
}

#[test]
fn bad_transfer_hints_are_caught_by_the_confirmation_run() {
    // Poison the hints: claim epoll_wait is stubbable. The confirmation
    // run (which applies all conclusions at once) must catch it — and,
    // with automatic bisection (the default), repair it by re-marking
    // epoll_wait as required.
    let mut hints = BTreeMap::new();
    hints.insert(
        Sysno::epoll_wait,
        loupe::core::FeatureClass {
            stub_ok: true,
            fake_ok: true,
        },
    );
    let app = registry::find("h2o").unwrap();

    // Without bisection: the failure is surfaced, not hidden.
    let manual = Engine::new(AnalysisConfig {
        auto_bisect_conflicts: false,
        ..AnalysisConfig::fast()
    })
    .analyze_with_hints(app.as_ref(), Workload::Benchmark, &hints)
    .unwrap();
    assert!(
        !manual.confirmed,
        "confirmation must catch the poisoned hint"
    );

    // With the automatic fallback (rides on `auto_bisect_conflicts`):
    // the failing confirmation revokes the hints, measures the skipped
    // features for real, and converges to the same classes a full
    // measurement would produce — a wrong hint costs runs, never results.
    let repaired = Engine::new(AnalysisConfig::fast())
        .analyze_with_hints(app.as_ref(), Workload::Benchmark, &hints)
        .unwrap();
    assert!(repaired.confirmed);
    assert!(repaired.classes[&Sysno::epoll_wait].is_required());
    let full = Engine::new(AnalysisConfig::fast())
        .analyze(app.as_ref(), Workload::Benchmark)
        .unwrap();
    assert_eq!(repaired.classes, full.classes);
    assert_eq!(repaired.conflicts, full.conflicts);
    assert_eq!(
        repaired.stats.transfer_skips, 0,
        "revoked hints no longer count as skips"
    );
    assert_eq!(repaired.stats.saved_runs, 0);
}

#[test]
fn helper_binary_syscalls_stay_out_of_the_trace() {
    // §3.3 whitelist: SQLite's suite shells out to a fixture tool that
    // calls getxattr/sethostname; those must not appear in SQLite's
    // footprint (and must not be interposed either).
    let engine = Engine::new(AnalysisConfig::fast());
    let app = registry::find("sqlite").unwrap();
    let report = engine.analyze(app.as_ref(), Workload::TestSuite).unwrap();
    assert!(
        !report.traced().contains(Sysno::getxattr),
        "helper-only syscall leaked into the trace"
    );
    assert!(!report.traced().contains(Sysno::sethostname));
    // The app's own syscalls are unaffected.
    assert!(report.traced().contains(Sysno::fsync));
}
