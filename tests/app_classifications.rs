//! Per-application classification spot checks, pinning the app-specific
//! requirements Table 1's plans are built from (benchmark workloads).

use loupe::apps::{registry, Workload};
use loupe::core::{AnalysisConfig, AppReport, Engine};
use loupe::syscalls::Sysno;

fn report(name: &str) -> AppReport {
    let app = registry::find(name).expect(name);
    Engine::new(AnalysisConfig::fast())
        .analyze(app.as_ref(), Workload::Benchmark)
        .expect("baseline passes")
}

#[test]
fn mongodb_required_tail_matches_table1() {
    // Table 1: MongoDB's unlock step implements 128 (rt_sigtimedwait),
    // 99 (sysinfo), 27 (mincore), 229 (clock_getres), 73 (flock),
    // 202 (futex), 283 (timerfd_create).
    let r = report("mongodb");
    for s in [
        Sysno::rt_sigtimedwait,
        Sysno::sysinfo,
        Sysno::mincore,
        Sysno::clock_getres,
        Sysno::flock,
        Sysno::futex,
        Sysno::timerfd_create,
    ] {
        assert!(r.required().contains(s), "mongodb must require {s}");
    }
    // And sigaltstack stays stubbable / statfs fakeable (Table 1's
    // stub/fake columns for MongoDB).
    assert!(r.classes[&Sysno::sigaltstack].stub_ok);
    assert!(r.classes[&Sysno::statfs].fake_ok);
    assert!(!r.classes[&Sysno::statfs].stub_ok);
}

#[test]
fn memcached_requires_eventfd_but_stubs_clock_nanosleep() {
    // Table 1: Unikraft implements 290 (eventfd2) to unlock Memcached and
    // stubs 230 (clock_nanosleep).
    let r = report("memcached");
    assert!(r.required().contains(Sysno::eventfd2));
    assert!(r.classes[&Sysno::clock_nanosleep].stub_ok);
}

#[test]
fn haproxy_requires_prlimit_and_backend_connect() {
    // Table 1 (Kerla): implement 302 (prlimit64) for HAProxy; a proxy
    // without a backend connect serves nothing.
    let r = report("haproxy");
    assert!(r.required().contains(Sysno::prlimit64));
    assert!(r.required().contains(Sysno::connect));
    // Socket-option tuning is unchecked and avoidable.
    assert!(r.classes[&Sysno::getsockopt].is_avoidable());
}

#[test]
fn webfsd_requires_identity_getters() {
    // Table 1 (Kerla step 10): implement 102/104/107/108 for webfsd.
    let r = report("webfsd");
    for s in [Sysno::getuid, Sysno::getgid, Sysno::geteuid, Sysno::getegid] {
        let class = r.classes[&s];
        assert!(!class.stub_ok, "webfsd checks {s}");
    }
}

#[test]
fn sqlite_requires_journal_management() {
    // Table 1 (Kerla): implement 8 (lseek), 21 (access), 87 (unlink) for
    // SQLite; 25 (mremap) is fakeable (mmap+copy fallback).
    let r = report("sqlite");
    for s in [Sysno::lseek, Sysno::access, Sysno::unlink] {
        assert!(r.required().contains(s), "sqlite must require {s}");
    }
    assert!(r.classes[&Sysno::mremap].is_avoidable());
}

#[test]
fn weborf_requires_guard_page_mprotect() {
    // Table 1 (Kerla): implement 10 (mprotect) for Weborf; fake 302.
    let r = report("weborf");
    assert!(r.required().contains(Sysno::mprotect));
    assert!(r.classes[&Sysno::prlimit64].is_avoidable());
}

#[test]
fn h2o_requires_tid_bookkeeping_and_fakes_getuid() {
    // Table 1: implement 218 (set_tid_address) + 288/290 for H2O; stub 32
    // (dup); fake 102 (getuid).
    let r = report("h2o");
    assert!(r.required().contains(Sysno::set_tid_address));
    assert!(r.required().contains(Sysno::eventfd2));
    assert!(r.classes[&Sysno::dup].stub_ok);
    let getuid = r.classes[&Sysno::getuid];
    assert!(!getuid.stub_ok && getuid.fake_ok);
}

#[test]
fn httpd_requires_checked_setsockopt_and_clone() {
    // Table 1 (Kerla step 1): implement 56 (clone) and 54 (setsockopt)
    // for Apache httpd.
    let r = report("httpd");
    assert!(r.required().contains(Sysno::setsockopt));
    assert!(r.required().contains(Sysno::clone));
}

#[test]
fn redis_ignores_informational_failures() {
    // §5.2's catalogue on Redis: sysinfo and ioctl failures are ignored
    // (log-only), rlimit getters fall back to safe defaults.
    let r = report("redis");
    for s in [Sysno::sysinfo, Sysno::ioctl, Sysno::prlimit64, Sysno::umask] {
        assert!(r.classes[&s].stub_ok, "redis tolerates stubbed {s}");
    }
    // But the AOF load path is load-bearing.
    assert!(r.required().contains(Sysno::newfstatat) || r.required().contains(Sysno::pread64));
}

#[test]
fn iperf3_is_nearly_all_core_path() {
    // A streaming benchmark exercises little beyond the data path.
    let r = report("iperf3");
    for s in [Sysno::read, Sysno::accept4, Sysno::socket, Sysno::listen] {
        assert!(r.required().contains(s), "iperf3 must require {s}");
    }
    assert!(r.classes[&Sysno::uname].stub_ok);
}
