//! End-to-end checks for the fleet × OS matrix layer through the facade
//! crate: the restricted kernel's boundary counters must survive into
//! the engine's `AppReport` (they used to die with the kernel), and the
//! full pipeline — baselines, matrix cells, rendered doc — must agree
//! about kerla.

use loupe::apps::{registry, Workload};
use loupe::core::{AnalysisConfig, Engine, ExecEnv};
use loupe::kernel::KernelProfile;
use loupe::plan::{os, AppRequirement};

/// Satellite regression: an engine analysis hosted on a kerla-derived
/// profile surfaces nonzero rejection counters (and, where the plan
/// fakes anything, fake-hit counters) in the report itself.
#[test]
fn kerla_profile_run_of_redis_surfaces_boundary_counters() {
    let workload = Workload::HealthCheck;
    let engine = Engine::new(AnalysisConfig::fast());
    let redis = registry::find("redis").unwrap();

    // A Linux measurement derives redis's plan guidance...
    let baseline = engine.analyze(redis.as_ref(), workload).unwrap();
    assert!(
        baseline.rejections.is_empty() && baseline.first_rejection.is_none(),
        "Linux rejects nothing"
    );
    let req = AppRequirement::from_report(&baseline);

    // ...which turns kerla into the "mid-plan" profile of redis's unlock
    // step: kerla's surface plus redis's required set implemented, the
    // stubbable classes deliberately `-ENOSYS`, the fake-only classes
    // shimmed. The baseline passes there, so a full analysis runs.
    let kerla = os::find("kerla").unwrap();
    let mut profile =
        KernelProfile::new("kerla @ redis unlock", kerla.supported.union(&req.required));
    profile.stubbed = req.stubbable.difference(&profile.implemented);
    profile.faked = req.fake_only.difference(&profile.implemented);
    let has_fakes = !profile.faked.is_empty();

    let report = Engine::new(AnalysisConfig {
        exec_env: ExecEnv::Restricted(profile),
        ..AnalysisConfig::fast()
    })
    .analyze(redis.as_ref(), workload)
    .expect("redis passes at its unlock step");

    assert_eq!(report.env, "kerla @ redis unlock");
    assert!(
        !report.rejections.is_empty(),
        "stubbed syscalls must be rejected at the boundary: {report:?}"
    );
    assert!(report.rejections.values().all(|&n| n > 0));
    let first = report.first_rejection.expect("a first rejection is named");
    assert!(
        report.rejections.contains_key(&first),
        "the first rejection is one of the counted ones"
    );
    if has_fakes {
        assert!(
            !report.fake_hits.is_empty(),
            "fake shims in the profile must be exercised"
        );
    }
    // The counters survive persistence too.
    let json = serde_json::to_string(&report).unwrap();
    let back: loupe::core::AppReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.rejections, report.rejections);
    assert_eq!(back.first_rejection, report.first_rejection);
}

/// The matrix verdicts agree with the validated plan book: kerla's
/// vanilla tier runs almost nothing of the detailed fleet, the planned
/// tier never regresses, and a full-surface OS runs everything.
#[test]
fn matrix_cells_bracket_kerla_between_bare_and_full() {
    use loupe::core::TestScript;
    use loupe::plan::{measure_cell, OsSpec, Tier};
    use loupe::syscalls::Sysno;

    let workload = Workload::HealthCheck;
    let engine = Engine::new(AnalysisConfig::fast());
    let kerla = os::find("kerla").unwrap();
    let full = OsSpec::new("everything", "1", Sysno::all().collect());
    let script = TestScript::default();

    let mut kerla_vanilla = 0;
    let mut kerla_planned = 0;
    let mut full_vanilla = 0;
    let apps: Vec<_> = registry::detailed().into_iter().take(6).collect();
    for app in &apps {
        let report = engine.analyze(app.as_ref(), workload).unwrap();
        let req = AppRequirement::from_report(&report);
        let on_kerla = measure_cell(
            &kerla,
            &req,
            app.as_ref(),
            workload,
            true,
            None,
            &script,
            None,
        );
        let on_full = measure_cell(
            &full,
            &req,
            app.as_ref(),
            workload,
            true,
            None,
            &script,
            None,
        );
        assert!(on_kerla.invariants_hold() && on_full.invariants_hold());
        kerla_vanilla += usize::from(on_kerla.passes(Tier::Vanilla));
        kerla_planned += usize::from(on_kerla.passes(Tier::Planned));
        full_vanilla += usize::from(on_full.passes(Tier::Vanilla));
        if !on_kerla.passes(Tier::Planned) {
            assert!(
                !on_kerla.missing_required.is_empty(),
                "{}: a blocked app names its analytical gap",
                app.name()
            );
        }
    }
    assert!(kerla_vanilla <= kerla_planned);
    assert_eq!(full_vanilla, apps.len(), "full surface runs everything");
    assert!(
        kerla_planned < full_vanilla,
        "kerla's 58 syscalls + shims cannot run the whole detailed fleet"
    );
}

/// Satellite regression for the partial-fidelity PR: the curated
/// per-flag holes cost each OS a *recorded* number of out-of-the-box
/// passes. The pinned values are the "after" column of the before/after
/// table in `docs/KNOWN_ISSUES.md` — if you touch a curated hole set,
/// this test, the sweep-regenerated docs and that table must move
/// together.
#[test]
fn curated_flag_holes_drop_vanilla_rates_as_recorded() {
    use loupe::core::TestScript;
    use loupe::plan::{measure_cell, Tier};

    // (os, benchmark, health-check, test-suite) out-of-the-box passes
    // over the full 116-app fleet.
    let pinned = [
        ("gvisor", 91, 91, 90),
        ("linuxulator", 91, 91, 91),
        ("gramine", 48, 48, 48),
        ("unikraft", 34, 34, 33),
        ("fuchsia", 22, 22, 22),
        ("osv", 6, 6, 6),
    ];
    let engine = Engine::new(AnalysisConfig::fast());
    let script = TestScript::default();
    let apps = registry::dataset();
    for workload in [
        Workload::Benchmark,
        Workload::HealthCheck,
        Workload::TestSuite,
    ] {
        let reqs: Vec<(usize, loupe::core::AppReport)> = apps
            .iter()
            .enumerate()
            .map(|(i, app)| (i, engine.analyze(app.as_ref(), workload).unwrap()))
            .collect();
        for (os_name, bench, health, suite) in pinned {
            let spec = os::find(os_name).unwrap();
            assert!(
                !spec.all_holes().is_empty(),
                "{os_name} carries curated holes"
            );
            let expected = match workload {
                Workload::Benchmark => bench,
                Workload::HealthCheck => health,
                Workload::TestSuite => suite,
            };
            let mut vanilla = 0;
            for (i, rep) in &reqs {
                let req = AppRequirement::from_report(rep);
                let cell = measure_cell(
                    &spec,
                    &req,
                    apps[*i].as_ref(),
                    workload,
                    true,
                    None,
                    &script,
                    Some(&rep.baseline.features),
                );
                vanilla += usize::from(cell.passes(Tier::Vanilla));
            }
            assert_eq!(
                vanilla,
                expected,
                "{os_name} out-of-the-box passes moved ({} workload); \
                 update docs/KNOWN_ISSUES.md's before/after table too",
                workload.label()
            );
        }
    }
}
