//! Deep behavioural tests of the simulated-kernel substrate: the
//! mechanisms Table 2 depends on, exercised directly at the syscall ABI.

use loupe::core::{Action, Interposed, Policy};
use loupe::kernel::{Invocation, Kernel, LinuxSim, Payload};
use loupe::syscalls::{Errno, Sysno};

fn inv(s: Sysno, args: [u64; 6]) -> Invocation {
    Invocation::new(s, args)
}

#[test]
fn faked_pipe2_produces_no_usable_fds() {
    // §5.3: "faking pipe2 results in pipes not being created".
    let policy = Policy::allow_all().with_syscall(Sysno::pipe2, Action::Fake);
    let mut k = Interposed::new(LinuxSim::new(), policy);
    let r = k.syscall(&inv(Sysno::pipe2, [0; 6]));
    assert_eq!(r.ret, 0, "the application sees success");
    assert_eq!(r.payload, Payload::None, "but no descriptors exist");
    // Writing to the fds the app would have used fails.
    let w = k.syscall(&inv(Sysno::write, [u64::MAX, 0, 4, 0, 0, 0]).with_data(&b"data"[..]));
    assert_eq!(w.errno(), Some(Errno::EBADF));
}

#[test]
fn faked_close_leaks_until_the_limit() {
    // Table 2 footnote: faking close is fine "within the maximum number
    // of FD limits" — beyond that, core functioning breaks.
    let policy = Policy::allow_all().with_syscall(Sysno::close, Action::Fake);
    let mut sim = LinuxSim::new();
    sim.vfs.add_file("/f", vec![0; 8]);
    // Tiny limit to reach exhaustion quickly.
    sim.syscall(&inv(Sysno::prlimit64, [0, 7, 8, 1048576, 0, 0]));
    let mut k = Interposed::new(sim, policy);
    let mut last = 0;
    for _ in 0..16 {
        let fd = k.syscall(&inv(Sysno::openat, [0; 6]).with_path("/f"));
        if fd.ret < 0 {
            assert_eq!(fd.errno(), Some(Errno::EMFILE), "exhaustion is EMFILE");
            assert!(last >= 6, "several leaked opens before exhaustion");
            return;
        }
        last = fd.ret;
        let c = k.syscall(&inv(Sysno::close, [fd.ret as u64, 0, 0, 0, 0, 0]));
        assert_eq!(c.ret, 0, "fake reports success");
    }
    panic!("EMFILE never hit despite faked close");
}

#[test]
fn stubbed_brk_vs_real_brk_memory_accounting() {
    // The glibc fallback mechanism: a stubbed brk never grows the heap;
    // the fallback mmap (issued by the libc model) grows RSS instead.
    let mut real = LinuxSim::new();
    let base = real
        .syscall(&inv(Sysno::brk, [0; 6]))
        .payload
        .as_u64()
        .unwrap();
    real.syscall(&inv(Sysno::brk, [base + 64 * 1024, 0, 0, 0, 0, 0]));
    assert_eq!(real.usage().cur_rss, 64 * 1024);

    let policy = Policy::allow_all().with_syscall(Sysno::brk, Action::Stub);
    let mut stubbed = Interposed::new(LinuxSim::new(), policy);
    let r = stubbed.syscall(&inv(Sysno::brk, [0; 6]));
    assert_eq!(r.errno(), Some(Errno::ENOSYS));
    assert_eq!(stubbed.usage().cur_rss, 0, "no heap growth through a stub");
}

#[test]
fn epoll_lifecycle_add_del_and_readiness() {
    let mut k = LinuxSim::new();
    let s = k.syscall(&inv(Sysno::socket, [0; 6])).ret as u64;
    k.syscall(&inv(Sysno::bind, [s, 9090, 0, 0, 0, 0]));
    k.syscall(&inv(Sysno::listen, [s, 0, 0, 0, 0, 0]));
    let ep = k.syscall(&inv(Sysno::epoll_create1, [0; 6])).ret as u64;
    assert_eq!(
        k.syscall(&inv(Sysno::epoll_ctl, [ep, 1, s, 0, 0, 0])).ret,
        0
    );

    k.host_mut().connect(9090).unwrap();
    assert_eq!(
        k.syscall(&inv(Sysno::epoll_wait, [ep, 0, 8, 0, 0, 0])).ret,
        1
    );

    // EPOLL_CTL_DEL removes interest: no more events.
    assert_eq!(
        k.syscall(&inv(Sysno::epoll_ctl, [ep, 2, s, 0, 0, 0])).ret,
        0
    );
    assert_eq!(
        k.syscall(&inv(Sysno::epoll_wait, [ep, 0, 8, 0, 0, 0])).ret,
        0
    );

    // Adding a closed fd is EBADF.
    k.syscall(&inv(Sysno::close, [s, 0, 0, 0, 0, 0]));
    let r = k.syscall(&inv(Sysno::epoll_ctl, [ep, 1, s, 0, 0, 0]));
    assert_eq!(r.errno(), Some(Errno::EBADF));
}

#[test]
fn write_to_closed_pipe_is_epipe() {
    let mut k = LinuxSim::new();
    let p = k.syscall(&inv(Sysno::pipe2, [0; 6]));
    let [rfd, wfd] = p.payload.as_fds().unwrap();
    k.syscall(&inv(Sysno::close, [rfd as u64, 0, 0, 0, 0, 0]));
    let w = k.syscall(&inv(Sysno::write, [wfd as u64, 0, 0, 0, 0, 0]).with_data(&b"x"[..]));
    assert_eq!(w.errno(), Some(Errno::EPIPE));
}

#[test]
fn dup_family_shares_the_underlying_object() {
    let mut k = LinuxSim::new();
    k.vfs.add_file("/f", b"abcdef".to_vec());
    let fd = k.syscall(&inv(Sysno::openat, [0; 6]).with_path("/f")).ret as u64;
    let dup = k.syscall(&inv(Sysno::dup, [fd, 0, 0, 0, 0, 0])).ret as u64;
    assert_ne!(fd, dup);
    // dup2 onto a specific number.
    let r = k.syscall(&inv(Sysno::dup2, [fd, 17, 0, 0, 0, 0]));
    assert_eq!(r.ret, 17);
    let read = k.syscall(&inv(Sysno::read, [17, 0, 3, 0, 0, 0]));
    assert_eq!(&read.payload.as_bytes().unwrap()[..], b"abc");
    // dup of a bad fd fails.
    let r = k.syscall(&inv(Sysno::dup, [999, 0, 0, 0, 0, 0]));
    assert_eq!(r.errno(), Some(Errno::EBADF));
}

#[test]
fn sendfile_moves_file_bytes_to_the_client() {
    let mut k = LinuxSim::new();
    k.vfs.add_file("/content", vec![b'Z'; 300]);
    let s = k.syscall(&inv(Sysno::socket, [0; 6])).ret as u64;
    k.syscall(&inv(Sysno::bind, [s, 80, 0, 0, 0, 0]));
    k.syscall(&inv(Sysno::listen, [s, 0, 0, 0, 0, 0]));
    let conn = k.host_mut().connect(80).unwrap();
    let cfd = k.syscall(&inv(Sysno::accept4, [s, 0, 0, 0, 0, 0])).ret as u64;
    let f = k
        .syscall(&inv(Sysno::openat, [0; 6]).with_path("/content"))
        .ret as u64;
    let sent = k.syscall(&inv(Sysno::sendfile, [cfd, f, 0, 300, 0, 0]));
    assert_eq!(sent.ret, 300);
    assert_eq!(k.host_mut().recv(conn).unwrap().len(), 300);
    let _ = conn;
}

#[test]
fn eventfd_counter_semantics() {
    let mut k = LinuxSim::new();
    let efd = k.syscall(&inv(Sysno::eventfd2, [0, 0, 0, 0, 0, 0])).ret as u64;
    // Empty: EAGAIN.
    let r = k.syscall(&inv(Sysno::read, [efd, 0, 8, 0, 0, 0]));
    assert_eq!(r.errno(), Some(Errno::EAGAIN));
    // Two writes accumulate; one read drains.
    k.syscall(&inv(Sysno::write, [efd, 0, 8, 0, 0, 0]).with_data(vec![1u8; 8]));
    k.syscall(&inv(Sysno::write, [efd, 0, 8, 0, 0, 0]).with_data(vec![1u8; 8]));
    let r = k.syscall(&inv(Sysno::read, [efd, 0, 8, 0, 0, 0]));
    assert_eq!(r.payload.as_u64(), Some(2));
    let r = k.syscall(&inv(Sysno::read, [efd, 0, 8, 0, 0, 0]));
    assert_eq!(r.errno(), Some(Errno::EAGAIN));
}

#[test]
fn timerfd_settime_validates_the_descriptor() {
    let mut k = LinuxSim::new();
    let tfd = k
        .syscall(&inv(Sysno::timerfd_create, [1, 0, 0, 0, 0, 0]))
        .ret as u64;
    assert_eq!(
        k.syscall(&inv(Sysno::timerfd_settime, [tfd, 0, 0, 0, 0, 0]))
            .ret,
        0
    );
    // Arming a non-timer fd fails — the check that makes a faked
    // timerfd_create detectable (Table 1's MongoDB step).
    assert_eq!(
        k.syscall(&inv(Sysno::timerfd_settime, [1, 0, 0, 0, 0, 0]))
            .errno(),
        Some(Errno::EINVAL)
    );
    assert_eq!(
        k.syscall(&inv(Sysno::timerfd_settime, [99, 0, 0, 0, 0, 0]))
            .errno(),
        Some(Errno::EBADF)
    );
}

#[test]
fn getdents_lists_only_direct_children() {
    let mut k = LinuxSim::new();
    k.vfs.add_file("/srv/a.txt", vec![]);
    k.vfs.add_file("/srv/b.txt", vec![]);
    k.vfs.add_file("/srv/sub/c.txt", vec![]);
    let fd = k.syscall(&inv(Sysno::openat, [0; 6]).with_path("/srv")).ret as u64;
    let r = k.syscall(&inv(Sysno::getdents64, [fd, 0, 1024, 0, 0, 0]));
    match r.payload {
        Payload::Text(names) => {
            assert!(names.contains("a.txt") && names.contains("b.txt"));
            assert!(names.contains("sub"));
            assert!(!names.contains("c.txt"));
        }
        other => panic!("expected text payload, got {other:?}"),
    }
}

#[test]
fn virtual_time_reflects_io_volume() {
    // Data-proportional costs: a 64 KiB write costs more than a 1-byte
    // write — the basis of every Table 2 performance effect.
    let mut k = LinuxSim::new();
    let t0 = k.now();
    k.syscall(&inv(Sysno::write, [1, 0, 0, 0, 0, 0]).with_data(vec![0u8; 1]));
    let small = k.now() - t0;
    let t1 = k.now();
    k.syscall(&inv(Sysno::write, [1, 0, 0, 0, 0, 0]).with_data(vec![0u8; 65536]));
    let big = k.now() - t1;
    // Base trap cost is 30 units; the 64 KiB payload adds 256 more.
    assert!(big >= small + 64 * 1024 / 256, "{big} !>= {small} + 256");
}

#[test]
fn tls_canary_is_installed_by_arch_prctl_only() {
    let mut k = LinuxSim::new();
    assert_eq!(k.mem_load(0x7fff_0000), 0);
    k.syscall(&inv(Sysno::arch_prctl, [0x1002, 0x7fff_0000, 0, 0, 0, 0]));
    assert_eq!(k.mem_load(0x7fff_0000), 0x715, "canary planted");

    let policy = Policy::allow_all().with_syscall(Sysno::arch_prctl, Action::Fake);
    let mut faked = Interposed::new(LinuxSim::new(), policy);
    let r = faked.syscall(&inv(Sysno::arch_prctl, [0x1002, 0x7fff_0000, 0, 0, 0, 0]));
    assert_eq!(r.ret, 0, "fake claims success");
    assert_eq!(faked.mem_load(0x7fff_0000), 0, "but TLS was never set up");
}

#[test]
fn pseudo_file_policies_only_affect_their_path() {
    let policy = Policy::allow_all().with_pseudo_file("/proc/cpuinfo", Action::Stub);
    let mut k = Interposed::new(LinuxSim::new(), policy);
    let r = k.syscall(&inv(Sysno::openat, [0; 6]).with_path("/proc/cpuinfo"));
    assert_eq!(r.errno(), Some(Errno::ENOSYS));
    let r = k.syscall(&inv(Sysno::openat, [0; 6]).with_path("/proc/meminfo"));
    assert!(r.ret >= 0, "other pseudo-files unaffected");
    let r = k.syscall(&inv(Sysno::openat, [0, 0, 0x40, 0, 0, 0]).with_path("/tmp/x"));
    assert!(r.ret >= 0, "regular files unaffected");
}
