//! End-to-end pipeline test for the population-scale subsystem: sweep
//! the *full* fleet concurrently, persist into a database, aggregate,
//! render the documentation set, and verify drift detection — the
//! workflow behind the checked-in `docs/COMPATIBILITY.md`.

use loupe::apps::{registry, Workload};
use loupe::db::Database;
use loupe::sweep::{report, FleetStats, Sweep, SweepConfig};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("loupe-pipeline-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn health_sweep() -> Sweep {
    Sweep::new(SweepConfig {
        workloads: vec![Workload::HealthCheck],
        ..SweepConfig::default()
    })
}

#[test]
fn full_fleet_sweep_persists_and_renders() {
    let dir = tmpdir("full");
    let db = Database::open(&dir).unwrap();

    // Sweep the complete 116-app dataset concurrently.
    let summary = health_sweep().run(&db, registry::dataset()).unwrap();
    assert!(summary.reports.len() >= 100, "fleet-scale sweep");
    assert_eq!(summary.analyzed, summary.reports.len());
    assert!(summary.failures.is_empty(), "{:?}", summary.failures);

    // Every report is persisted and loadable.
    assert_eq!(db.list().unwrap().len(), summary.reports.len());
    let stored = db.load_workload(Workload::HealthCheck).unwrap();
    assert_eq!(stored, summary.reports);

    // Aggregation reproduces the paper's headline shape: a compact
    // required core inside a much larger traced surface.
    let stats = FleetStats::aggregate(Workload::HealthCheck, &stored);
    assert_eq!(stats.apps, summary.reports.len());
    assert!(stats.required_anywhere() < stats.rows.len());
    assert!(stats.importance.first().unwrap().importance >= 0.9);

    // Rendering covers the matrix, the support-plan book, one page per
    // app, and the per-app index.
    let rendered = report::render(&db).unwrap();
    assert_eq!(rendered.files.len(), summary.reports.len() + 3);

    // Written docs pass the drift check; a tampered file fails it.
    let docs = dir.join("docs");
    report::write(&db, &docs).unwrap();
    assert!(report::check(&db, &docs).unwrap().is_empty());
    std::fs::write(docs.join("COMPATIBILITY.md"), "stale").unwrap();
    assert!(!report::check(&db, &docs).unwrap().is_empty());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn matrix_bytes_are_identical_across_sweep_configurations() {
    // Same fleet + same workload ⇒ byte-identical rendered matrix,
    // regardless of worker count or whether results came from cache.
    let apps = || -> Vec<_> { registry::detailed().into_iter().take(8).collect() };

    let dir_serial = tmpdir("bytes-serial");
    let db_serial = Database::open(&dir_serial).unwrap();
    Sweep::new(SweepConfig {
        workloads: vec![Workload::HealthCheck],
        workers: 1,
        ..SweepConfig::default()
    })
    .run(&db_serial, apps())
    .unwrap();

    let dir_parallel = tmpdir("bytes-parallel");
    let db_parallel = Database::open(&dir_parallel).unwrap();
    let sweep_parallel = Sweep::new(SweepConfig {
        workloads: vec![Workload::HealthCheck],
        workers: 8,
        ..SweepConfig::default()
    });
    sweep_parallel.run(&db_parallel, apps()).unwrap();
    // Re-run so the parallel db also serves from cache.
    sweep_parallel.run(&db_parallel, apps()).unwrap();

    let a = report::render(&db_serial).unwrap();
    let b = report::render(&db_parallel).unwrap();
    assert_eq!(a, b);

    std::fs::remove_dir_all(&dir_serial).ok();
    std::fs::remove_dir_all(&dir_parallel).ok();
}

#[test]
fn sharded_sweeps_compose_into_the_same_database_state() {
    // Two shard processes sharing one database must cover the fleet the
    // same way one whole-fleet sweep does.
    let dir_sharded = tmpdir("shard");
    let db_sharded = Database::open(&dir_sharded).unwrap();
    for i in 0..2 {
        let mut shard = registry::shard(i, 2);
        shard.truncate(10);
        health_sweep().run(&db_sharded, shard).unwrap();
    }

    let dir_whole = tmpdir("whole");
    let db_whole = Database::open(&dir_whole).unwrap();
    let mut apps: Vec<_> = Vec::new();
    for i in 0..2 {
        let mut shard = registry::shard(i, 2);
        shard.truncate(10);
        apps.extend(shard);
    }
    health_sweep().run(&db_whole, apps).unwrap();

    assert_eq!(
        db_sharded.load_workload(Workload::HealthCheck).unwrap(),
        db_whole.load_workload(Workload::HealthCheck).unwrap()
    );
    std::fs::remove_dir_all(&dir_sharded).ok();
    std::fs::remove_dir_all(&dir_whole).ok();
}
