//! Cross-crate integration tests: the full pipeline from app models
//! through the engine, static analysers, planner and database.

use loupe::apps::{registry, Workload};
use loupe::core::{Action, AnalysisConfig, Engine, Interposed, Policy};
use loupe::db::Database;
use loupe::kernel::{Kernel, LinuxSim};
use loupe::plan::{os, AppRequirement, SupportPlan};
use loupe::statics::{BinaryAnalyzer, SourceAnalyzer, StaticAnalyzer};
use loupe::syscalls::Sysno;

fn fast_engine() -> Engine {
    Engine::new(AnalysisConfig::fast())
}

#[test]
fn every_detailed_app_passes_every_workload_baseline() {
    let engine = fast_engine();
    for app in registry::detailed() {
        for workload in [
            Workload::HealthCheck,
            Workload::Benchmark,
            Workload::TestSuite,
        ] {
            let report = engine
                .analyze(app.as_ref(), workload)
                .unwrap_or_else(|e| panic!("{} fails its {} baseline: {e}", app.name(), workload));
            assert!(
                !report.required().is_empty(),
                "{} {}: something must be required",
                app.name(),
                workload
            );
        }
    }
}

#[test]
fn analysis_hierarchy_holds_for_every_detailed_app() {
    // The Fig. 4 invariant: required ⊆ traced ⊆ source view ∪ libc ⊆
    // binary view — dynamic results must be consistent with the static
    // ones for the measurement comparison to make sense.
    let engine = fast_engine();
    let src = SourceAnalyzer::new();
    let bin = BinaryAnalyzer::new();
    for app in registry::detailed() {
        let report = engine.analyze(app.as_ref(), Workload::TestSuite).unwrap();
        let traced = report.traced();
        let required = report.required();
        let binary = bin.analyze(app.as_ref()).syscalls;
        let source = src.analyze(app.as_ref()).syscalls;
        assert!(required.is_subset(&traced), "{}", app.name());
        assert!(
            traced.is_subset(&binary),
            "{}: traced ⊄ binary view: {}",
            app.name(),
            traced.difference(&binary)
        );
        assert!(source.is_subset(&binary), "{}", app.name());
        assert!(
            required.len() < binary.len() / 3,
            "{}: static must heavily overestimate (required {} vs binary {})",
            app.name(),
            required.len(),
            binary.len()
        );
    }
}

#[test]
fn suite_requirements_dominate_benchmark_requirements() {
    // Deeper workloads can only add requirements (§3.2: workloads are
    // levels of guarantee).
    let engine = fast_engine();
    for name in ["redis", "nginx", "sqlite"] {
        let app = registry::find(name).unwrap();
        let bench = engine.analyze(app.as_ref(), Workload::Benchmark).unwrap();
        let suite = engine.analyze(app.as_ref(), Workload::TestSuite).unwrap();
        assert!(
            suite.traced().len() >= bench.traced().len(),
            "{name}: suites trace at least as much"
        );
        assert!(
            suite.required().len() >= bench.required().len(),
            "{name}: suites require at least as much"
        );
    }
}

#[test]
fn fundamental_syscalls_are_required_across_the_board() {
    // §5.2: "certain system calls can (almost) never be stubbed nor
    // faked": execve, the TLS arch_prctl, mmap, and the socket trio for
    // servers.
    let engine = fast_engine();
    for name in ["nginx", "redis", "haproxy", "lighttpd"] {
        let app = registry::find(name).unwrap();
        let required = engine
            .analyze(app.as_ref(), Workload::Benchmark)
            .unwrap()
            .required();
        for s in [
            Sysno::execve,
            Sysno::arch_prctl,
            Sysno::mmap,
            Sysno::socket,
            Sysno::bind,
            Sysno::listen,
        ] {
            assert!(required.contains(s), "{name}: {s} must be required");
        }
    }
}

#[test]
fn identity_setters_are_fakeable_but_not_stubbable_for_nginx() {
    // Fig. 6b's pattern: checked calls abort on -ENOSYS but tolerate a
    // faked success (meaningless in a unikernel).
    let engine = fast_engine();
    let app = registry::find("nginx").unwrap();
    let report = engine.analyze(app.as_ref(), Workload::Benchmark).unwrap();
    for s in [Sysno::prctl, Sysno::setuid, Sysno::setgid, Sysno::setgroups] {
        let class = report.classes[&s];
        assert!(!class.stub_ok, "nginx checks {s}: stub must fail");
        assert!(class.fake_ok, "nginx survives faked {s}");
    }
}

#[test]
fn lighttpd_tolerates_stubbed_privilege_drop_unlike_nginx() {
    // Diversity across apps (Table 1: Kerla *stubs* 105/106/116 for
    // Lighttpd but must fake them for Nginx).
    let engine = fast_engine();
    let lighttpd = registry::find("lighttpd").unwrap();
    let report = engine
        .analyze(lighttpd.as_ref(), Workload::Benchmark)
        .unwrap();
    for s in [Sysno::setuid, Sysno::setgid, Sysno::setgroups] {
        assert!(
            report.classes[&s].stub_ok,
            "lighttpd warns-and-continues on {s}"
        );
    }
}

#[test]
fn full_pipeline_measure_store_plan() {
    // Measure → persist → reload → plan, end to end.
    let dir = std::env::temp_dir().join(format!("loupe-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let db = Database::open(&dir).unwrap();

    let engine = fast_engine();
    for name in ["weborf", "webfsd", "sqlite"] {
        let app = registry::find(name).unwrap();
        let report = engine.analyze(app.as_ref(), Workload::HealthCheck).unwrap();
        db.save(&report).unwrap();
    }

    let reqs = db.requirements(Workload::HealthCheck).unwrap();
    assert_eq!(reqs.len(), 3);

    let kerla = os::find("kerla").unwrap();
    let plan = SupportPlan::generate(&kerla, &reqs);
    assert_eq!(
        plan.initially_supported.len() + plan.steps.len(),
        3,
        "every app is either supported or planned"
    );
    // Plans are deterministic.
    let plan2 = SupportPlan::generate(&kerla, &reqs);
    assert_eq!(plan, plan2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_count_matches_the_paper_formula() {
    // §3.3: (2 + 2·s) · r runs per analysis.
    for replicas in [1u32, 2] {
        let engine = Engine::new(AnalysisConfig {
            replicas,
            ..AnalysisConfig::fast()
        });
        let app = registry::find("hello-glibc-static").unwrap();
        let report = engine.analyze(app.as_ref(), Workload::HealthCheck).unwrap();
        assert!(report.stats.matches_formula(), "{:?}", report.stats);
        assert_eq!(
            report.stats.total_runs(),
            (2 + 2 * report.stats.features_tested) * u64::from(replicas)
        );
    }
}

#[test]
fn interposed_kernel_behaves_like_plain_kernel_when_allowing_all() {
    let mut plain = LinuxSim::new();
    let mut wrapped = Interposed::new(LinuxSim::new(), Policy::allow_all());
    for sysno in [Sysno::getpid, Sysno::getuid, Sysno::brk, Sysno::uname] {
        let a = plain.syscall(&loupe::kernel::Invocation::new(sysno, [0; 6]));
        let b = wrapped.syscall(&loupe::kernel::Invocation::new(sysno, [0; 6]));
        assert_eq!(a, b, "{sysno}");
    }
}

#[test]
fn confirmation_policy_composes_for_detailed_apps() {
    // The final combined run (§3.1) must hold for the deep-dive apps.
    let engine = fast_engine();
    for name in ["nginx", "redis", "memcached", "sqlite", "weborf"] {
        let app = registry::find(name).unwrap();
        let report = engine.analyze(app.as_ref(), Workload::Benchmark).unwrap();
        assert!(report.confirmed, "{name}: combined stub/fake policy failed");
    }
}

#[test]
fn pseudo_file_interposition_classifies_special_files() {
    let engine = Engine::new(AnalysisConfig {
        explore_pseudo_files: true,
        ..AnalysisConfig::fast()
    });
    let app = registry::find("h2o").unwrap();
    let report = engine.analyze(app.as_ref(), Workload::HealthCheck).unwrap();
    // h2o touches /dev/urandom only in the getrandom fallback; nothing
    // else uses pseudo-files in the health path, so the map may be empty —
    // but when entries exist they must carry a classification.
    for (path, class) in &report.pseudo_files {
        assert!(path.starts_with("/proc") || path.starts_with("/dev") || path.starts_with("/sys"));
        let _ = class.label();
    }
}

#[test]
fn sub_feature_analysis_finds_partial_implementations() {
    // §5.4: fcntl mixes required (F_SETFL) and stubbable (F_SETFD)
    // features; arch_prctl needs only ARCH_SET_FS.
    let engine = Engine::new(AnalysisConfig {
        explore_sub_features: true,
        ..AnalysisConfig::fast()
    });
    let app = registry::find("redis").unwrap();
    let report = engine.analyze(app.as_ref(), Workload::Benchmark).unwrap();
    let setfl = report
        .sub_features
        .iter()
        .find(|(k, _)| k.selector_name() == Some("F_SETFL"));
    let (_, class) = setfl.expect("redis uses fcntl(F_SETFL)");
    assert!(class.is_required(), "F_SETFL is the non-blocking gate");
    let arch = report
        .sub_features
        .iter()
        .find(|(k, _)| k.selector_name() == Some("ARCH_SET_FS"));
    let (_, class) = arch.expect("TLS setup traced");
    assert!(class.is_required());
}

#[test]
fn strict_perf_policy_disqualifies_noisy_stubs() {
    // Under PerfPolicy::Strict, the nginx access-log write stub (which
    // *speeds up* the server by >3%) is no longer an acceptable stub.
    use loupe::core::PerfPolicy;
    let lenient = fast_engine();
    let strict = Engine::new(AnalysisConfig {
        perf_policy: PerfPolicy::Strict,
        ..AnalysisConfig::fast()
    });
    let app = registry::find("nginx").unwrap();
    let l = lenient.analyze(app.as_ref(), Workload::Benchmark).unwrap();
    let s = strict.analyze(app.as_ref(), Workload::Benchmark).unwrap();
    assert!(l.classes[&Sysno::write].stub_ok);
    assert!(
        !s.classes[&Sysno::write].stub_ok,
        "perf deviation disqualifies"
    );
    assert!(
        s.required().len() >= l.required().len(),
        "strict can only require more"
    );
}

#[test]
fn os_database_covers_the_papers_eleven_targets() {
    let names: Vec<String> = os::db().into_iter().map(|o| o.name).collect();
    for expected in [
        "unikraft",
        "fuchsia",
        "kerla",
        "osv",
        "hermitux",
        "gvisor",
        "gramine",
        "linuxulator",
        "browsix",
        "zephyr",
        "nolibc",
    ] {
        assert!(names.iter().any(|n| n == expected), "{expected} missing");
    }
}

#[test]
fn requirement_roundtrip_through_reports() {
    let engine = fast_engine();
    let app = registry::find("memcached").unwrap();
    let report = engine.analyze(app.as_ref(), Workload::Benchmark).unwrap();
    let req = AppRequirement::from_report(&report);
    // The planner's required set includes the fallback syscalls the
    // combined stub/fake policy exercised (untraced in the baseline).
    assert_eq!(req.required, report.plan_required());
    assert!(report.required().is_subset(&req.required));
    assert!(req.required.is_subset(&req.traced));
    assert!(req.stubbable.intersection(&req.fake_only).is_empty());
}

#[test]
fn stubbing_close_leaks_fds_through_the_whole_stack() {
    // The Table 2 mechanism, checked end-to-end through the engine's
    // impact records rather than by poking the kernel directly.
    let engine = fast_engine();
    let app = registry::find("redis").unwrap();
    let report = engine.analyze(app.as_ref(), Workload::Benchmark).unwrap();
    let close = report.impacts[&Sysno::close].fake.unwrap();
    assert!(close.success, "redis tolerates faked close");
    assert!(
        close.fd_delta > 1.0,
        "fds must leak: {:+.2}",
        close.fd_delta
    );
    let futex = report.impacts[&Sysno::futex].fake.unwrap();
    assert!(!futex.success, "faked futex breaks core functioning");
    assert!(
        futex.perf_delta < -0.3,
        "throughput collapses: {:+.2}",
        futex.perf_delta
    );
}

#[test]
fn policy_action_for_respects_action_precedence() {
    let policy = Policy::allow_all()
        .with_syscall(Sysno::ioctl, Action::Stub)
        .with_sub_feature(loupe::syscalls::SubFeature::FIONBIO.key(), Action::Fake);
    let fionbio = loupe::kernel::Invocation::new(Sysno::ioctl, [3, 0x5421, 1, 0, 0, 0]);
    let tcgets = loupe::kernel::Invocation::new(Sysno::ioctl, [1, 0x5401, 0, 0, 0, 0]);
    assert_eq!(
        policy.action_for(&fionbio),
        Action::Fake,
        "sub-feature wins"
    );
    assert_eq!(
        policy.action_for(&tcgets),
        Action::Stub,
        "syscall rule applies"
    );
}
